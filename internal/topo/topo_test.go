package topo

import (
	"fmt"
	"testing"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

func TestStar(t *testing.T) {
	net := netsim.New()
	tp := Star(net, 4, Config{})
	if len(tp.Hosts()) != 4 || len(tp.Switches()) != 1 {
		t.Fatalf("hosts=%d switches=%d", len(tp.Hosts()), len(tp.Switches()))
	}
	h1, h2 := tp.Hosts()[0], tp.Hosts()[1]
	path, err := tp.PathOf(netsim.FlowKey{Src: h1.IP(), Dst: h2.IP()})
	if err != nil || len(path) != 1 {
		t.Fatalf("path=%v err=%v", path, err)
	}
	rp, tagIdx, err := tp.ReconstructPath(h1.IP(), h2.IP(), 0)
	if err != nil || len(rp) != 1 || rp[0] != path[0] || tagIdx != 0 {
		t.Fatalf("reconstruct=%v tagIdx=%d err=%v", rp, tagIdx, err)
	}
	if _, _, err := tp.ReconstructPath(h1.IP(), h2.IP(), 5); err == nil {
		t.Fatalf("bogus link should error")
	}
}

func TestDumbbellRoutingAndDelivery(t *testing.T) {
	net := netsim.New()
	tp := Dumbbell(net, 2, 2, Config{})
	l1, _ := tp.HostByName("L1")
	r1, _ := tp.HostByName("R1")
	got := 0
	r1.OnReceive(func(p *netsim.Packet, now simtime.Time) { got++ })
	l1.Send(&netsim.Packet{ID: 1, Size: 100, Flow: netsim.FlowKey{Src: l1.IP(), Dst: r1.IP()}})
	net.Run()
	if got != 1 {
		t.Fatalf("packet not delivered across dumbbell")
	}
}

func TestDumbbellPathAndKeyLink(t *testing.T) {
	net := netsim.New()
	tp := Dumbbell(net, 2, 2, Config{})
	l1, _ := tp.HostByName("L1")
	l2, _ := tp.HostByName("L2")
	r1, _ := tp.HostByName("R1")
	sl, _ := tp.SwitchByName("SL")
	sr, _ := tp.SwitchByName("SR")

	cross, err := tp.PathOf(netsim.FlowKey{Src: l1.IP(), Dst: r1.IP()})
	if err != nil || len(cross) != 2 || cross[0] != sl.NodeID() || cross[1] != sr.NodeID() {
		t.Fatalf("cross path=%v err=%v", cross, err)
	}
	local, err := tp.PathOf(netsim.FlowKey{Src: l1.IP(), Dst: l2.IP()})
	if err != nil || len(local) != 1 || local[0] != sl.NodeID() {
		t.Fatalf("local path=%v err=%v", local, err)
	}

	// The SL→SR egress must be a key link for cross traffic.
	link, ok := tp.LinkBetween(sl.NodeID(), sr.NodeID())
	if !ok {
		t.Fatalf("no SL→SR link")
	}
	port, ok := tp.portFor(t, sl.NodeID(), link)
	if !ok {
		t.Fatalf("no port for link")
	}
	if !tp.IsKeyLinkEgress(sl, r1.IP(), port) {
		t.Fatalf("SL→SR should be a key link")
	}
	// Host-facing egress is never a key link.
	hostPort := tp.hostPort[l2.IP()]
	if tp.IsKeyLinkEgress(sl, l2.IP(), hostPort) {
		t.Fatalf("host port must not be a key link")
	}

	// Reconstruction from the tagged link.
	rp, tagIdx, err := tp.ReconstructPath(l1.IP(), r1.IP(), link)
	if err != nil || len(rp) != 2 || tagIdx != 0 {
		t.Fatalf("reconstruct=%v tagIdx=%d err=%v", rp, tagIdx, err)
	}
	// Untagged cross-switch reconstruction must fail loudly.
	if _, _, err := tp.ReconstructPath(l1.IP(), r1.IP(), 0); err == nil {
		t.Fatalf("untagged cross-switch should error")
	}
}

// portFor is a test helper resolving a LinkID to its egress port index.
func (tp *Topology) portFor(t *testing.T, sw netsim.NodeID, id LinkID) (int, bool) {
	t.Helper()
	p, ok := tp.portByID[id]
	return p, ok
}

func TestChainPaths(t *testing.T) {
	net := netsim.New()
	tp := Chain(net, []int{2, 2, 2}, Config{})
	a, _ := tp.HostByName("h1-1")
	f, _ := tp.HostByName("h3-2")
	s1, _ := tp.SwitchByName("S1")
	s2, _ := tp.SwitchByName("S2")
	s3, _ := tp.SwitchByName("S3")

	path, err := tp.PathOf(netsim.FlowKey{Src: a.IP(), Dst: f.IP()})
	if err != nil {
		t.Fatal(err)
	}
	want := []netsim.NodeID{s1.NodeID(), s2.NodeID(), s3.NodeID()}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("path=%v want %v", path, want)
	}

	link, _ := tp.LinkBetween(s1.NodeID(), s2.NodeID())
	rp, tagIdx, err := tp.ReconstructPath(a.IP(), f.IP(), link)
	if err != nil || len(rp) != 3 || tagIdx != 0 {
		t.Fatalf("reconstruct=%v tagIdx=%d err=%v", rp, tagIdx, err)
	}
	// Reverse direction: the first link is S3→S2.
	rlink, _ := tp.LinkBetween(s3.NodeID(), s2.NodeID())
	rrp, rTagIdx, err := tp.ReconstructPath(f.IP(), a.IP(), rlink)
	if err != nil || len(rrp) != 3 || rrp[0] != s3.NodeID() || rTagIdx != 0 {
		t.Fatalf("reverse reconstruct=%v tagIdx=%d err=%v", rrp, rTagIdx, err)
	}
	// A link not on the route errors.
	badLink, _ := tp.LinkBetween(s2.NodeID(), s1.NodeID())
	if _, _, err := tp.ReconstructPath(a.IP(), f.IP(), badLink); err == nil {
		t.Fatalf("off-route link should error")
	}
}

func TestChainEndToEnd(t *testing.T) {
	net := netsim.New()
	tp := Chain(net, []int{1, 0, 1}, Config{})
	src := tp.Hosts()[0]
	dst := tp.Hosts()[1]
	var got int
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) { got++ })
	src.Send(&netsim.Packet{ID: 1, Size: 500, Flow: netsim.FlowKey{Src: src.IP(), Dst: dst.IP()}})
	net.Run()
	if got != 1 {
		t.Fatalf("chain delivery failed")
	}
}

func TestParallelLinksDistinctIDs(t *testing.T) {
	net := netsim.New()
	tp := ParallelLinks(net, 1, 4, 2, Config{})
	sl, _ := tp.SwitchByName("SL")
	sr, _ := tp.SwitchByName("SR")
	ids := tp.linkIDs[linkKey{sl.NodeID(), sr.NodeID()}]
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Fatalf("parallel link IDs = %v", ids)
	}
	// Both parallel egress ports are key links.
	for _, id := range ids {
		port := tp.portByID[id]
		if !tp.IsKeyLinkEgress(sl, tp.Hosts()[1].IP(), port) {
			t.Fatalf("parallel link %d not key", id)
		}
	}
	if tp.NumLinkRules(sl.NodeID()) != 2 {
		t.Fatalf("NumLinkRules = %d, want 2", tp.NumLinkRules(sl.NodeID()))
	}
}

func TestLeafSpine(t *testing.T) {
	net := netsim.New()
	tp := LeafSpine(net, 3, 2, 2, Config{})
	if len(tp.Hosts()) != 6 || len(tp.Switches()) != 5 {
		t.Fatalf("hosts=%d switches=%d", len(tp.Hosts()), len(tp.Switches()))
	}
	h11, _ := tp.HostByName("h1-1")
	h21, _ := tp.HostByName("h2-1")
	h12, _ := tp.HostByName("h1-2")

	flow := netsim.FlowKey{Src: h11.IP(), Dst: h21.IP(), SrcPort: 1000, DstPort: 2000, Proto: netsim.ProtoTCP}
	path, err := tp.PathOf(flow)
	if err != nil || len(path) != 3 {
		t.Fatalf("path=%v err=%v", path, err)
	}
	if tp.RoleOf(path[1]) != RoleCore {
		t.Fatalf("middle hop should be a spine")
	}
	// Reconstruction: the leaf→spine link pins the path.
	link, ok := tp.LinkBetween(path[0], path[1])
	if !ok {
		t.Fatalf("no leaf→spine link")
	}
	rp, tagIdx, err := tp.ReconstructPath(h11.IP(), h21.IP(), link)
	if err != nil || tagIdx != 0 || len(rp) != 3 {
		t.Fatalf("reconstruct=%v err=%v", rp, err)
	}
	for i := range rp {
		if rp[i] != path[i] {
			t.Fatalf("reconstruct mismatch: %v vs %v", rp, path)
		}
	}
	// Same-leaf flows are single-switch, untagged.
	lp, _ := tp.PathOf(netsim.FlowKey{Src: h11.IP(), Dst: h12.IP()})
	if len(lp) != 1 {
		t.Fatalf("same-leaf path=%v", lp)
	}
	rp, _, err = tp.ReconstructPath(h11.IP(), h12.IP(), 0)
	if err != nil || len(rp) != 1 {
		t.Fatalf("untagged same-leaf reconstruct=%v err=%v", rp, err)
	}
}

func TestLeafSpineECMPConsistency(t *testing.T) {
	net := netsim.New()
	tp := LeafSpine(net, 2, 4, 1, Config{})
	h1 := tp.Hosts()[0]
	h2 := tp.Hosts()[1]
	// Different flows may take different spines, but PathOf must agree with
	// the live forwarding decision for each flow.
	for port := uint16(1); port <= 32; port++ {
		flow := netsim.FlowKey{Src: h1.IP(), Dst: h2.IP(), SrcPort: port, DstPort: 80, Proto: netsim.ProtoTCP}
		predicted, err := tp.PathOf(flow)
		if err != nil {
			t.Fatal(err)
		}
		// Trace the live path with pipeline hooks.
		var live []netsim.NodeID
		for _, sw := range tp.Switches() {
			sw := sw
			sw.Pipeline = []netsim.PipelineFunc{func(s *netsim.Switch, p *netsim.Packet, in, out *netsim.Port, now simtime.Time) {
				live = append(live, s.NodeID())
			}}
		}
		h1.Send(&netsim.Packet{ID: uint64(port), Size: 100, Flow: flow})
		net.Run()
		if len(live) != len(predicted) {
			t.Fatalf("flow %v: live %v vs predicted %v", flow, live, predicted)
		}
		for i := range live {
			if live[i] != predicted[i] {
				t.Fatalf("flow %v: live %v vs predicted %v", flow, live, predicted)
			}
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	net := netsim.New()
	tp := FatTree(net, 4, Config{})
	if len(tp.Hosts()) != 16 {
		t.Fatalf("hosts = %d, want 16", len(tp.Hosts()))
	}
	if len(tp.Switches()) != 20 {
		t.Fatalf("switches = %d, want 20", len(tp.Switches()))
	}
	roles := map[Role]int{}
	for _, s := range tp.Switches() {
		roles[tp.RoleOf(s.NodeID())]++
	}
	if roles[RoleToR] != 8 || roles[RoleAgg] != 8 || roles[RoleCore] != 4 {
		t.Fatalf("roles = %v", roles)
	}
}

func TestFatTreePathsAllPairs(t *testing.T) {
	net := netsim.New()
	tp := FatTree(net, 4, Config{})
	hosts := tp.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
			path, err := tp.PathOf(flow)
			if err != nil {
				t.Fatalf("%s→%s: %v", src.NodeName(), dst.NodeName(), err)
			}
			srcTor, _ := tp.ToROf(src.IP())
			dstTor, _ := tp.ToROf(dst.IP())
			switch {
			case srcTor == dstTor:
				if len(path) != 1 {
					t.Fatalf("same-edge path %v", path)
				}
			case tp.pod[srcTor.NodeID()] == tp.pod[dstTor.NodeID()]:
				if len(path) != 3 {
					t.Fatalf("intra-pod path %v", path)
				}
			default:
				if len(path) != 5 {
					t.Fatalf("inter-pod path %v", path)
				}
				if tp.RoleOf(path[2]) != RoleCore {
					t.Fatalf("inter-pod middle not core: %v", path)
				}
			}
		}
	}
}

func TestFatTreeReconstruction(t *testing.T) {
	net := netsim.New()
	tp := FatTree(net, 4, Config{})
	hosts := tp.Hosts()
	checked := map[int]int{}
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 7, DstPort: 9, Proto: netsim.ProtoTCP}
			path, err := tp.PathOf(flow)
			if err != nil {
				t.Fatal(err)
			}
			// Determine which hop would tag, mimicking the datapath: walk
			// the path, first key-link egress wins.
			var link LinkID
			tagSwitch := -1
			for i := 0; i+1 < len(path); i++ {
				nd, _ := tp.Net.NodeByID(path[i])
				sw := nd.(*netsim.Switch)
				// All ports from path[i] to path[i+1]; ECMP picked this one.
				ports := tp.portTo[path[i]][path[i+1]]
				if len(ports) == 0 {
					t.Fatalf("no ports %v→%v", path[i], path[i+1])
				}
				port := ports[0]
				if tp.IsKeyLinkEgress(sw, dst.IP(), port) {
					l, ok := tp.LinkIDForPort(path[i], port)
					if !ok {
						t.Fatalf("key egress has no link ID")
					}
					link = l
					tagSwitch = i
					break
				}
			}
			rp, tagIdx, err := tp.ReconstructPath(src.IP(), dst.IP(), link)
			if err != nil {
				t.Fatalf("%s→%s (path %v, link %d): %v", src.NodeName(), dst.NodeName(), path, link, err)
			}
			if len(rp) != len(path) {
				t.Fatalf("%s→%s: reconstructed %v vs real %v", src.NodeName(), dst.NodeName(), rp, path)
			}
			for i := range rp {
				if rp[i] != path[i] {
					t.Fatalf("%s→%s: reconstructed %v vs real %v", src.NodeName(), dst.NodeName(), rp, path)
				}
			}
			if link != 0 && tagIdx != tagSwitch {
				t.Fatalf("%s→%s: tagIdx %d vs expected %d", src.NodeName(), dst.NodeName(), tagIdx, tagSwitch)
			}
			checked[len(path)]++
		}
	}
	if checked[1] == 0 || checked[3] == 0 || checked[5] == 0 {
		t.Fatalf("coverage: %v (want all of 1-, 3-, 5-switch paths)", checked)
	}
}

func TestFatTreeLiveDelivery(t *testing.T) {
	net := netsim.New()
	tp := FatTree(net, 4, Config{})
	src := tp.Hosts()[0]
	dst := tp.Hosts()[15] // other pod
	delivered := 0
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) { delivered++ })
	for i := 0; i < 10; i++ {
		src.Send(&netsim.Packet{ID: uint64(i), Size: 1000,
			Flow: netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: uint16(i), DstPort: 80, Proto: netsim.ProtoUDP}})
	}
	net.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d/10", delivered)
	}
}

func TestSharesSegment(t *testing.T) {
	a := []netsim.NodeID{1, 2, 3}
	b := []netsim.NodeID{4, 2, 3}
	c := []netsim.NodeID{3, 2, 1}
	if !SharesSegment(a, b) {
		t.Fatalf("a and b share 2→3")
	}
	if SharesSegment(a, c) {
		t.Fatalf("a and c share no directed segment")
	}
	if SharesSegment(a, []netsim.NodeID{9}) {
		t.Fatalf("single-switch path has no segments")
	}
	if !ContainsSwitch(a, 2) || ContainsSwitch(a, 9) {
		t.Fatalf("ContainsSwitch wrong")
	}
}

func TestECMPIndexDeterministic(t *testing.T) {
	f := netsim.FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: netsim.ProtoTCP}
	if ECMPIndex(f, 4) != ECMPIndex(f, 4) {
		t.Fatalf("non-deterministic")
	}
	// Spread check: many flows should not all pick the same path.
	counts := make([]int, 4)
	for p := uint16(0); p < 64; p++ {
		g := f
		g.SrcPort = p
		counts[ECMPIndex(g, 4)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("ECMP bucket %d never used: %v", i, counts)
		}
	}
}

func TestClockOffsetsBounded(t *testing.T) {
	eps := 10 * simtime.Millisecond
	offs := clockOffsets(50, eps, 42)
	for i, o := range offs {
		if o < -eps/2 || o > eps/2 {
			t.Fatalf("offset %d = %v out of ±ε/2", i, o)
		}
	}
	// Deterministic for a given seed.
	offs2 := clockOffsets(50, eps, 42)
	for i := range offs {
		if offs[i] != offs2[i] {
			t.Fatalf("offsets not deterministic")
		}
	}
	if clockOffsets(3, 0, 1)[0] != 0 {
		t.Fatalf("zero eps should give zero offsets")
	}
}

func TestNumLinkRulesScalesWithPorts(t *testing.T) {
	net := netsim.New()
	tp := FatTree(net, 4, Config{})
	// An edge switch has 2 up-ports (to aggs): 2 link rules.
	edge, _ := tp.SwitchByName("edge0-0")
	if got := tp.NumLinkRules(edge.NodeID()); got != 2 {
		t.Fatalf("edge link rules = %d, want 2", got)
	}
	// An agg has 2 down (to edges) + 2 up (to cores) = 4.
	agg, _ := tp.SwitchByName("agg0-0")
	if got := tp.NumLinkRules(agg.NodeID()); got != 4 {
		t.Fatalf("agg link rules = %d, want 4", got)
	}
}

func TestFatTreeOddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("odd k should panic")
		}
	}()
	FatTree(netsim.New(), 3, Config{})
}

func TestHostSwitchLookupMisses(t *testing.T) {
	net := netsim.New()
	tp := Dumbbell(net, 1, 1, Config{})
	if _, ok := tp.HostByName("nope"); ok {
		t.Fatalf("bogus host found")
	}
	if _, ok := tp.SwitchByName("nope"); ok {
		t.Fatalf("bogus switch found")
	}
	if _, ok := tp.ToROf(netsim.IP(9, 9, 9, 9)); ok {
		t.Fatalf("bogus IP found")
	}
	if _, err := tp.PathOf(netsim.FlowKey{Src: netsim.IP(9, 9, 9, 9), Dst: tp.Hosts()[0].IP()}); err == nil {
		t.Fatalf("unknown src should error")
	}
}

func ExampleECMPIndex() {
	flow := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 1), Dst: netsim.IP(10, 0, 1, 1), SrcPort: 12345, DstPort: 80, Proto: netsim.ProtoTCP}
	fmt.Println(ECMPIndex(flow, 4) == ECMPIndex(flow, 4))
	// Output: true
}
