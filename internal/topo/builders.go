package topo

import (
	"fmt"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// Config holds the common knobs of the topology builders.
type Config struct {
	// HostRateBps is the host-NIC link rate (default 1 Gb/s, the paper's
	// testbed rate; Fig 9 uses 10 Gb/s).
	HostRateBps int64
	// FabricRateBps is the switch-switch link rate (default = HostRateBps).
	FabricRateBps int64
	// LinkDelay is the per-link propagation delay (default 1 µs).
	LinkDelay simtime.Time
	// Eps bounds the pairwise clock drift between devices (§4.2.1). Switch
	// clock offsets are drawn deterministically from [−Eps/2, +Eps/2].
	Eps simtime.Time
	// Seed drives the deterministic clock-offset assignment.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.HostRateBps == 0 {
		c.HostRateBps = netsim.Rate1G
	}
	if c.FabricRateBps == 0 {
		c.FabricRateBps = c.HostRateBps
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = simtime.Microsecond
	}
	return c
}

func (c Config) hostLink() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: c.HostRateBps, Delay: c.LinkDelay}
}

func (c Config) fabricLink() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: c.FabricRateBps, Delay: c.LinkDelay}
}

// HostByName finds a host by its name.
func (t *Topology) HostByName(name string) (*netsim.Host, bool) {
	for _, h := range t.hosts {
		if h.NodeName() == name {
			return h, true
		}
	}
	return nil, false
}

// SwitchByName finds a switch by its name.
func (t *Topology) SwitchByName(name string) (*netsim.Switch, bool) {
	for _, s := range t.switches {
		if s.NodeName() == name {
			return s, true
		}
	}
	return nil, false
}

// Star builds n hosts under a single switch. Single-switch paths carry no
// link tag (there is no switch-switch link to sample); hosts fall back to
// arrival-time epoch estimation.
func Star(net *netsim.Network, n int, cfg Config) *Topology {
	cfg = cfg.withDefaults()
	t := newTopology(net, fmt.Sprintf("star(%d)", n))
	offs := clockOffsets(1, cfg.Eps, cfg.Seed)
	s := net.NewSwitch("s1", offs[0])
	t.addSwitch(s, RoleToR, -1)
	for i := 0; i < n; i++ {
		h := net.NewHost(fmt.Sprintf("h%d", i+1), netsim.IP(10, 0, 0, byte(i+1)))
		t.addHost(h, s, cfg.hostLink())
	}
	t.tagScope = func(*Topology, *netsim.Switch, netsim.IPv4, int) bool { return false }
	t.reconstruct = func(t *Topology, src, dst netsim.IPv4, link LinkID) ([]netsim.NodeID, int, error) {
		if link != 0 {
			return nil, 0, fmt.Errorf("topo: unexpected link tag %d in star", link)
		}
		return []netsim.NodeID{s.NodeID()}, 0, nil
	}
	t.ComputeRoutes()
	return t
}

// Dumbbell builds nLeft hosts under switch SL and nRight hosts under SR with
// a single SL–SR fabric link: the shared-bottleneck testbed of the
// too-much-traffic experiments (Fig 1(a), Fig 2). Left hosts are named
// "L1..", right hosts "R1..".
func Dumbbell(net *netsim.Network, nLeft, nRight int, cfg Config) *Topology {
	cfg = cfg.withDefaults()
	t := newTopology(net, fmt.Sprintf("dumbbell(%d,%d)", nLeft, nRight))
	offs := clockOffsets(2, cfg.Eps, cfg.Seed)
	sl := net.NewSwitch("SL", offs[0])
	sr := net.NewSwitch("SR", offs[1])
	t.addSwitch(sl, RoleToR, -1)
	t.addSwitch(sr, RoleToR, -1)
	t.connectSwitches(sl, sr, cfg.fabricLink())
	for i := 0; i < nLeft; i++ {
		h := net.NewHost(fmt.Sprintf("L%d", i+1), netsim.IP(10, 0, 1, byte(i+1)))
		t.addHost(h, sl, cfg.hostLink())
	}
	for i := 0; i < nRight; i++ {
		h := net.NewHost(fmt.Sprintf("R%d", i+1), netsim.IP(10, 0, 2, byte(i+1)))
		t.addHost(h, sr, cfg.hostLink())
	}
	t.tagScope = interSwitchTagScope
	t.reconstruct = intervalReconstruct
	t.ComputeRoutes()
	return t
}

// ParallelLinks builds a dumbbell with nLinks parallel SL–SR links. It is the
// §5.4 load-imbalance testbed: a malfunctioning SL spreads flows across the
// parallel interfaces by size instead of by hash. The per-link LinkIDs let
// receiving hosts attribute each flow to the egress interface it used.
func ParallelLinks(net *netsim.Network, nLeft, nRight, nLinks int, cfg Config) *Topology {
	cfg = cfg.withDefaults()
	t := newTopology(net, fmt.Sprintf("parallel(%d,%d,x%d)", nLeft, nRight, nLinks))
	offs := clockOffsets(2, cfg.Eps, cfg.Seed)
	sl := net.NewSwitch("SL", offs[0])
	sr := net.NewSwitch("SR", offs[1])
	t.addSwitch(sl, RoleToR, -1)
	t.addSwitch(sr, RoleToR, -1)
	for i := 0; i < nLinks; i++ {
		t.connectSwitches(sl, sr, cfg.fabricLink())
	}
	for i := 0; i < nLeft; i++ {
		h := net.NewHost(fmt.Sprintf("L%d", i+1), netsim.IP(10, 0, 1, byte(i+1)))
		t.addHost(h, sl, cfg.hostLink())
	}
	for i := 0; i < nRight; i++ {
		// Right side may exceed 254 hosts in large runs; spread over the
		// third octet.
		h := net.NewHost(fmt.Sprintf("R%d", i+1), netsim.IP(10, 1, byte(i/250), byte(i%250+1)))
		t.addHost(h, sr, cfg.hostLink())
	}
	t.tagScope = interSwitchTagScope
	t.reconstruct = intervalReconstruct
	t.ComputeRoutes()
	return t
}

// Chain builds a line of n switches S1–S2–…–Sn with hostsPer[i] hosts under
// switch i. It is the Fig 1(b)/(c) testbed: hosts are named "h<si>-<j>"
// (e.g. "h1-1" is the first host under S1).
func Chain(net *netsim.Network, hostsPer []int, cfg Config) *Topology {
	cfg = cfg.withDefaults()
	n := len(hostsPer)
	if n == 0 {
		panic("topo: Chain needs at least one switch")
	}
	t := newTopology(net, fmt.Sprintf("chain(%d)", n))
	offs := clockOffsets(n, cfg.Eps, cfg.Seed)
	sws := make([]*netsim.Switch, n)
	for i := 0; i < n; i++ {
		sws[i] = net.NewSwitch(fmt.Sprintf("S%d", i+1), offs[i])
		t.addSwitch(sws[i], RoleToR, -1)
	}
	for i := 0; i+1 < n; i++ {
		t.connectSwitches(sws[i], sws[i+1], cfg.fabricLink())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < hostsPer[i]; j++ {
			h := net.NewHost(fmt.Sprintf("h%d-%d", i+1, j+1), netsim.IP(10, 0, byte(i+1), byte(j+1)))
			t.addHost(h, sws[i], cfg.hostLink())
		}
	}
	t.tagScope = interSwitchTagScope
	t.reconstruct = intervalReconstruct
	t.ComputeRoutes()
	return t
}

// interSwitchTagScope tags on any switch-facing egress: combined with the
// "only tag untagged packets" datapath rule this stamps the first
// switch-switch link of the path, which pins the whole trajectory in
// diversity-free topologies (dumbbell, parallel, chain).
func interSwitchTagScope(t *Topology, sw *netsim.Switch, dst netsim.IPv4, outPort int) bool {
	_, isLink := t.LinkIDForPort(sw.NodeID(), outPort)
	return isLink
}

// intervalReconstruct rebuilds paths in diversity-free topologies by walking
// the unique switch-level route and validating it against the tagged link.
func intervalReconstruct(t *Topology, src, dst netsim.IPv4, link LinkID) ([]netsim.NodeID, int, error) {
	srcTor, ok := t.attach[src]
	if !ok {
		return nil, 0, fmt.Errorf("topo: unknown source %s", src)
	}
	dstTor, ok := t.attach[dst]
	if !ok {
		return nil, 0, fmt.Errorf("topo: unknown destination %s", dst)
	}
	if link == 0 {
		if srcTor != dstTor {
			return nil, 0, fmt.Errorf("topo: untagged packet across switches (%s→%s)", src, dst)
		}
		return []netsim.NodeID{srcTor.NodeID()}, 0, nil
	}
	from, to, ok := t.LinkEndpoints(link)
	if !ok {
		return nil, 0, fmt.Errorf("topo: unknown link %d", link)
	}
	path, err := t.PathOf(netsim.FlowKey{Src: src, Dst: dst})
	if err != nil {
		return nil, 0, err
	}
	tagIdx := -1
	for i := 0; i+1 < len(path); i++ {
		if path[i] == from && path[i+1] == to {
			tagIdx = i
			break
		}
	}
	if tagIdx < 0 {
		return nil, 0, fmt.Errorf("topo: link %d not on route %v", link, path)
	}
	return path, tagIdx, nil
}

// LeafSpine builds a 2-tier clos: nLeaf leaves each connected to every one of
// nSpine spines, with hostsPerLeaf hosts per leaf. Hosts are named
// "h<leaf>-<i>"; leaves "leaf<i>", spines "spine<i>". Cross-leaf packets are
// tagged on the leaf→spine key link, which identifies the spine and hence the
// full 3-switch path.
func LeafSpine(net *netsim.Network, nLeaf, nSpine, hostsPerLeaf int, cfg Config) *Topology {
	cfg = cfg.withDefaults()
	t := newTopology(net, fmt.Sprintf("leafspine(%d,%d)", nLeaf, nSpine))
	offs := clockOffsets(nLeaf+nSpine, cfg.Eps, cfg.Seed)
	leaves := make([]*netsim.Switch, nLeaf)
	spines := make([]*netsim.Switch, nSpine)
	for i := range leaves {
		leaves[i] = net.NewSwitch(fmt.Sprintf("leaf%d", i+1), offs[i])
		t.addSwitch(leaves[i], RoleToR, -1)
	}
	for i := range spines {
		spines[i] = net.NewSwitch(fmt.Sprintf("spine%d", i+1), offs[nLeaf+i])
		t.addSwitch(spines[i], RoleCore, -1)
	}
	for _, l := range leaves {
		for _, s := range spines {
			t.connectSwitches(l, s, cfg.fabricLink())
		}
	}
	for i, l := range leaves {
		for j := 0; j < hostsPerLeaf; j++ {
			h := net.NewHost(fmt.Sprintf("h%d-%d", i+1, j+1), netsim.IP(10, 0, byte(i+1), byte(j+1)))
			t.addHost(h, l, cfg.hostLink())
		}
	}
	t.tagScope = func(t *Topology, sw *netsim.Switch, dst netsim.IPv4, outPort int) bool {
		if t.roles[sw.NodeID()] != RoleToR {
			return false
		}
		if tor := t.attach[dst]; tor == sw {
			return false // local delivery, no key link
		}
		_, isLink := t.LinkIDForPort(sw.NodeID(), outPort)
		return isLink
	}
	t.reconstruct = func(t *Topology, src, dst netsim.IPv4, link LinkID) ([]netsim.NodeID, int, error) {
		srcTor, ok1 := t.attach[src]
		dstTor, ok2 := t.attach[dst]
		if !ok1 || !ok2 {
			return nil, 0, fmt.Errorf("topo: unknown endpoint %s→%s", src, dst)
		}
		if link == 0 {
			if srcTor != dstTor {
				return nil, 0, fmt.Errorf("topo: untagged cross-leaf packet")
			}
			return []netsim.NodeID{srcTor.NodeID()}, 0, nil
		}
		from, to, ok := t.LinkEndpoints(link)
		if !ok {
			return nil, 0, fmt.Errorf("topo: unknown link %d", link)
		}
		if from != srcTor.NodeID() {
			return nil, 0, fmt.Errorf("topo: link %d does not start at source leaf", link)
		}
		return []netsim.NodeID{srcTor.NodeID(), to, dstTor.NodeID()}, 0, nil
	}
	t.ComputeRoutes()
	return t
}

// FatTree builds the classic k-ary fat-tree (k even): k pods of k/2 edge and
// k/2 aggregation switches, (k/2)² cores, k³/4 hosts. Host IPs follow the
// 10.pod.edge.(i+1) convention. Per CherryPick, intra-pod packets are tagged
// on the edge→agg link (identifying the agg); inter-pod packets on the
// agg→core link (identifying agg and core, which pins the 5-switch path).
func FatTree(net *netsim.Network, k int, cfg Config) *Topology {
	if k < 2 || k%2 != 0 {
		panic("topo: fat-tree arity must be even and ≥ 2")
	}
	cfg = cfg.withDefaults()
	t := newTopology(net, fmt.Sprintf("fattree(k=%d)", k))
	half := k / 2
	nSwitches := k*k + half*half // k pods × k switches + cores
	offs := clockOffsets(nSwitches, cfg.Eps, cfg.Seed)
	oi := 0
	nextOff := func() simtime.Time { o := offs[oi]; oi++; return o }

	edges := make([][]*netsim.Switch, k) // [pod][i]
	aggs := make([][]*netsim.Switch, k)  // [pod][j]
	cores := make([]*netsim.Switch, half*half)
	for p := 0; p < k; p++ {
		edges[p] = make([]*netsim.Switch, half)
		aggs[p] = make([]*netsim.Switch, half)
		for i := 0; i < half; i++ {
			edges[p][i] = net.NewSwitch(fmt.Sprintf("edge%d-%d", p, i), nextOff())
			t.addSwitch(edges[p][i], RoleToR, p)
		}
		for j := 0; j < half; j++ {
			aggs[p][j] = net.NewSwitch(fmt.Sprintf("agg%d-%d", p, j), nextOff())
			t.addSwitch(aggs[p][j], RoleAgg, p)
		}
	}
	for c := range cores {
		cores[c] = net.NewSwitch(fmt.Sprintf("core%d", c), nextOff())
		t.addSwitch(cores[c], RoleCore, -1)
	}
	// Pod fabric: every edge to every agg within the pod.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				t.connectSwitches(edges[p][i], aggs[p][j], cfg.fabricLink())
			}
		}
	}
	// Core fabric: agg j connects to cores [j·half, (j+1)·half).
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			for c := 0; c < half; c++ {
				t.connectSwitches(aggs[p][j], cores[j*half+c], cfg.fabricLink())
			}
		}
	}
	// Hosts.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for hI := 0; hI < half; hI++ {
				h := net.NewHost(fmt.Sprintf("h%d-%d-%d", p, i, hI),
					netsim.IP(10, byte(p), byte(i), byte(hI+1)))
				t.addHost(h, edges[p][i], cfg.hostLink())
			}
		}
	}

	podOf := func(ip netsim.IPv4) int { return int(byte(ip >> 16)) }
	t.tagScope = func(t *Topology, sw *netsim.Switch, dst netsim.IPv4, outPort int) bool {
		if _, isLink := t.LinkIDForPort(sw.NodeID(), outPort); !isLink {
			return false
		}
		switch t.roles[sw.NodeID()] {
		case RoleToR:
			// Tag only intra-pod, cross-edge traffic at the edge layer.
			return podOf(dst) == t.pod[sw.NodeID()] && t.attach[dst] != sw
		case RoleAgg:
			// Tag inter-pod traffic on the way up to the core.
			return podOf(dst) != t.pod[sw.NodeID()]
		default:
			return false
		}
	}
	t.reconstruct = func(t *Topology, src, dst netsim.IPv4, link LinkID) ([]netsim.NodeID, int, error) {
		srcTor, ok1 := t.attach[src]
		dstTor, ok2 := t.attach[dst]
		if !ok1 || !ok2 {
			return nil, 0, fmt.Errorf("topo: unknown endpoint %s→%s", src, dst)
		}
		if link == 0 {
			if srcTor != dstTor {
				return nil, 0, fmt.Errorf("topo: untagged cross-edge packet")
			}
			return []netsim.NodeID{srcTor.NodeID()}, 0, nil
		}
		from, to, ok := t.LinkEndpoints(link)
		if !ok {
			return nil, 0, fmt.Errorf("topo: unknown link %d", link)
		}
		switch t.roles[from] {
		case RoleToR: // edge→agg: intra-pod path
			if from != srcTor.NodeID() {
				return nil, 0, fmt.Errorf("topo: intra-pod link %d does not start at source edge", link)
			}
			return []netsim.NodeID{srcTor.NodeID(), to, dstTor.NodeID()}, 0, nil
		case RoleAgg: // agg→core: inter-pod 5-switch path
			core := to
			dstPod := podOf(dst)
			var dstAgg netsim.NodeID = -1
			for _, nb := range t.neighbors[core] {
				if t.roles[nb] == RoleAgg && t.pod[nb] == dstPod {
					dstAgg = nb
					break
				}
			}
			if dstAgg < 0 {
				return nil, 0, fmt.Errorf("topo: core of link %d has no agg in pod %d", link, dstPod)
			}
			return []netsim.NodeID{srcTor.NodeID(), from, core, dstAgg, dstTor.NodeID()}, 1, nil
		default:
			return nil, 0, fmt.Errorf("topo: link %d starts at unexpected role", link)
		}
	}
	t.ComputeRoutes()
	return t
}
