// Package topo builds the datacenter topologies the paper's testbeds use and
// computes routing, packet trajectories, and CherryPick key links over them.
//
// SwitchPointer's commodity-mode header embedding (§4.1.3) relies on the
// CherryPick observation [SOSR'15]: in clos-style datacenter topologies an
// end-to-end path is identified by a small number of "key" links, so a switch
// only needs to stamp one linkID VLAN tag (plus one epochID tag) for the
// receiving host to reconstruct the whole trajectory. This package decides,
// per topology, which egress links are key links for which destinations, and
// performs the inverse reconstruction at the host.
package topo

import (
	"fmt"
	"math/rand"
	"sort"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// LinkID identifies one directed switch-to-switch link. LinkID 0 is reserved
// to mean "no link tag" (single-switch paths).
type LinkID uint32

// Role classifies a switch within its topology.
type Role uint8

// Switch roles.
const (
	RoleToR  Role = iota + 1 // edge / leaf / top-of-rack
	RoleAgg                  // aggregation
	RoleCore                 // core / spine
)

type linkKey struct {
	from, to netsim.NodeID
}

// Topology wraps a netsim.Network with the structural knowledge SwitchPointer
// needs: host attachment points, link identifiers, routing, and key links.
type Topology struct {
	Net *netsim.Network

	// Name describes the topology instance, e.g. "fattree(k=4)".
	Name string

	hosts    []*netsim.Host
	switches []*netsim.Switch
	roles    map[netsim.NodeID]Role
	pod      map[netsim.NodeID]int // pod number for fat-tree nodes, -1 otherwise

	attach   map[netsim.IPv4]*netsim.Switch // host IP → ToR
	hostPort map[netsim.IPv4]int            // ToR-local port facing the host

	// Directed switch-switch graph.
	neighbors map[netsim.NodeID][]netsim.NodeID         // deterministic order
	portTo    map[netsim.NodeID]map[netsim.NodeID][]int // from → to → local egress ports (parallel links possible)
	linkIDs   map[linkKey][]LinkID                      // directed link(s) → IDs (one per parallel link)
	linkByID  map[LinkID]linkKey
	portByID  map[LinkID]int // egress port index at the from-switch
	nextLink  LinkID

	// tagScope decides whether a given egress link is a key (tagging) link
	// for a packet to dst. Set by builders.
	tagScope func(t *Topology, sw *netsim.Switch, dst netsim.IPv4, outPort int) bool

	// reconstruct rebuilds the switch-level path from (src, dst, linkID).
	// Set by builders. linkID 0 means "untagged".
	reconstruct func(t *Topology, src, dst netsim.IPv4, link LinkID) ([]netsim.NodeID, int, error)
}

func newTopology(net *netsim.Network, name string) *Topology {
	return &Topology{
		Net:       net,
		Name:      name,
		roles:     make(map[netsim.NodeID]Role),
		pod:       make(map[netsim.NodeID]int),
		attach:    make(map[netsim.IPv4]*netsim.Switch),
		hostPort:  make(map[netsim.IPv4]int),
		neighbors: make(map[netsim.NodeID][]netsim.NodeID),
		portTo:    make(map[netsim.NodeID]map[netsim.NodeID][]int),
		linkIDs:   make(map[linkKey][]LinkID),
		linkByID:  make(map[LinkID]linkKey),
		portByID:  make(map[LinkID]int),
		nextLink:  1,
	}
}

// Hosts returns all hosts.
func (t *Topology) Hosts() []*netsim.Host { return t.hosts }

// Switches returns all switches.
func (t *Topology) Switches() []*netsim.Switch { return t.switches }

// RoleOf returns the role of a switch.
func (t *Topology) RoleOf(id netsim.NodeID) Role { return t.roles[id] }

// ToROf returns the switch a host attaches to.
func (t *Topology) ToROf(ip netsim.IPv4) (*netsim.Switch, bool) {
	s, ok := t.attach[ip]
	return s, ok
}

// addHost wires a host under a ToR.
func (t *Topology) addHost(h *netsim.Host, tor *netsim.Switch, link netsim.LinkConfig) {
	_, torPort := t.Net.Connect(h, tor, link)
	t.hosts = append(t.hosts, h)
	t.attach[h.IP()] = tor
	t.hostPort[h.IP()] = torPort.Index()
}

// addSwitch records a switch with a role (and optional pod).
func (t *Topology) addSwitch(s *netsim.Switch, role Role, pod int) {
	t.switches = append(t.switches, s)
	t.roles[s.NodeID()] = role
	t.pod[s.NodeID()] = pod
}

// connectSwitches wires a full-duplex switch-switch link and assigns the two
// directed LinkIDs.
func (t *Topology) connectSwitches(a, b *netsim.Switch, link netsim.LinkConfig) (abID, baID LinkID) {
	pa, pb := t.Net.Connect(a, b, link)
	abID = t.registerLink(a.NodeID(), b.NodeID(), pa.Index())
	baID = t.registerLink(b.NodeID(), a.NodeID(), pb.Index())
	return abID, baID
}

func (t *Topology) registerLink(from, to netsim.NodeID, port int) LinkID {
	id := t.nextLink
	t.nextLink++
	k := linkKey{from, to}
	if len(t.linkIDs[k]) == 0 {
		t.neighbors[from] = append(t.neighbors[from], to)
	}
	t.linkIDs[k] = append(t.linkIDs[k], id)
	t.linkByID[id] = k
	if t.portTo[from] == nil {
		t.portTo[from] = make(map[netsim.NodeID][]int)
	}
	t.portTo[from][to] = append(t.portTo[from][to], port)
	t.portByID[id] = port
	return id
}

// LinkBetween returns the first directed LinkID from switch a to b.
func (t *Topology) LinkBetween(a, b netsim.NodeID) (LinkID, bool) {
	ids := t.linkIDs[linkKey{a, b}]
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

// LinkEndpoints resolves a LinkID to its (from, to) switches.
func (t *Topology) LinkEndpoints(id LinkID) (from, to netsim.NodeID, ok bool) {
	k, found := t.linkByID[id]
	return k.from, k.to, found
}

// LinkIDForPort returns the LinkID of switch sw's egress port, if that port
// is a switch-switch link.
func (t *Topology) LinkIDForPort(sw netsim.NodeID, port int) (LinkID, bool) {
	for to, ports := range t.portTo[sw] {
		for i, p := range ports {
			if p == port {
				return t.linkIDs[linkKey{sw, to}][i], true
			}
		}
	}
	return 0, false
}

// NumLinkRules returns the number of flow rules switch sw needs for linkID
// embedding: one per switch-facing egress port (the paper notes this grows
// linearly with port count, §4.1.3).
func (t *Topology) NumLinkRules(sw netsim.NodeID) int {
	n := 0
	for _, ports := range t.portTo[sw] {
		n += len(ports)
	}
	return n
}

// IsKeyLinkEgress reports whether a packet for dst leaving switch sw on
// outPort should receive the (linkID, epochID) tag pair there.
func (t *Topology) IsKeyLinkEgress(sw *netsim.Switch, dst netsim.IPv4, outPort int) bool {
	if t.tagScope == nil {
		return false
	}
	return t.tagScope(t, sw, dst, outPort)
}

// ReconstructPath rebuilds the switch-level trajectory of a packet from its
// source, destination and the linkID carried in its header (0 when the packet
// carried no link tag, i.e. a single-switch path). It returns the path and
// the index within it of the tagging switch (-1 when untagged; by convention
// the single ToR for untagged paths).
func (t *Topology) ReconstructPath(src, dst netsim.IPv4, link LinkID) ([]netsim.NodeID, int, error) {
	if t.reconstruct == nil {
		return nil, 0, fmt.Errorf("topo: no reconstruction defined for %s", t.Name)
	}
	return t.reconstruct(t, src, dst, link)
}

// ComputeRoutes installs shortest-path routes for every host destination on
// every switch, breaking equal-cost ties with a deterministic per-flow ECMP
// hash (installed as a RouteOverride on switches with path diversity).
func (t *Topology) ComputeRoutes() {
	for _, sw := range t.switches {
		sw := sw
		candidates := make(map[netsim.IPv4][]int)
		for _, h := range t.hosts {
			ports := t.candidatePorts(sw, h.IP())
			if len(ports) == 0 {
				continue
			}
			candidates[h.IP()] = ports
			sw.SetRoute(h.IP(), ports[0])
		}
		multi := false
		for _, ports := range candidates {
			if len(ports) > 1 {
				multi = true
				break
			}
		}
		if multi {
			sw.RouteOverride = func(s *netsim.Switch, p *netsim.Packet) (int, bool) {
				ports := candidates[p.Flow.Dst]
				if len(ports) <= 1 {
					return 0, false
				}
				return ports[ECMPIndex(p.Flow, len(ports))], true
			}
		}
	}
}

// EgressPortsToward returns the egress ports switch sw may use for traffic
// to dst (all equal-cost choices). The analyzer's pruning uses it to decide
// whether a candidate host's traffic could have shared the victim's output
// queue.
func (t *Topology) EgressPortsToward(sw *netsim.Switch, dst netsim.IPv4) []int {
	return t.candidatePorts(sw, dst)
}

// candidatePorts returns the egress ports of sw on shortest paths to dst, in
// deterministic order.
func (t *Topology) candidatePorts(sw *netsim.Switch, dst netsim.IPv4) []int {
	tor := t.attach[dst]
	if tor == nil {
		return nil
	}
	if sw == tor {
		return []int{t.hostPort[dst]}
	}
	dist := t.bfsDistances(tor.NodeID())
	d, ok := dist[sw.NodeID()]
	if !ok {
		return nil
	}
	var ports []int
	for _, nb := range t.neighbors[sw.NodeID()] {
		if nd, ok := dist[nb]; ok && nd == d-1 {
			ports = append(ports, t.portTo[sw.NodeID()][nb]...)
		}
	}
	sort.Ints(ports)
	return ports
}

// bfsDistances computes hop distances from a root switch over the
// switch-switch graph.
func (t *Topology) bfsDistances(root netsim.NodeID) map[netsim.NodeID]int {
	dist := map[netsim.NodeID]int{root: 0}
	queue := []netsim.NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighbors[cur] {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// PathOf walks the installed routing state and returns the ground-truth
// switch path a flow takes. It is the oracle tests compare header-based
// reconstruction against; the running system never calls it.
func (t *Topology) PathOf(flow netsim.FlowKey) ([]netsim.NodeID, error) {
	tor, ok := t.attach[flow.Src]
	if !ok {
		return nil, fmt.Errorf("topo: unknown source %s", flow.Src)
	}
	dstTor, ok := t.attach[flow.Dst]
	if !ok {
		return nil, fmt.Errorf("topo: unknown destination %s", flow.Dst)
	}
	path := []netsim.NodeID{tor.NodeID()}
	cur := tor
	for cur != dstTor {
		ports := t.candidatePorts(cur, flow.Dst)
		if len(ports) == 0 {
			return nil, fmt.Errorf("topo: no route from %s to %s", cur.NodeName(), flow.Dst)
		}
		port := ports[0]
		if len(ports) > 1 {
			port = ports[ECMPIndex(flow, len(ports))]
		}
		next, ok := t.switchAtPort(cur, port)
		if !ok {
			return nil, fmt.Errorf("topo: port %d of %s does not face a switch", port, cur.NodeName())
		}
		path = append(path, next.NodeID())
		cur = next
		if len(path) > 16 {
			return nil, fmt.Errorf("topo: path too long (loop?)")
		}
	}
	return path, nil
}

func (t *Topology) switchAtPort(sw *netsim.Switch, port int) (*netsim.Switch, bool) {
	for to, ports := range t.portTo[sw.NodeID()] {
		for _, p := range ports {
			if p == port {
				nd, _ := t.Net.NodeByID(to)
				next, ok := nd.(*netsim.Switch)
				return next, ok
			}
		}
	}
	return nil, false
}

// SharesSegment reports whether two switch paths share at least one directed
// switch-to-switch link. The analyzer's search-radius pruning (§4.3) keeps a
// candidate host only if traffic to it could have shared a path segment with
// the victim flow.
func SharesSegment(a, b []netsim.NodeID) bool {
	type seg struct{ x, y netsim.NodeID }
	segs := make(map[seg]bool, len(a))
	for i := 0; i+1 < len(a); i++ {
		segs[seg{a[i], a[i+1]}] = true
	}
	for i := 0; i+1 < len(b); i++ {
		if segs[seg{b[i], b[i+1]}] {
			return true
		}
	}
	return false
}

// ContainsSwitch reports whether the path visits switch id.
func ContainsSwitch(path []netsim.NodeID, id netsim.NodeID) bool {
	for _, n := range path {
		if n == id {
			return true
		}
	}
	return false
}

// ECMPIndex deterministically picks one of n equal-cost paths for a flow by
// hashing its 5-tuple (FNV-1a).
func ECMPIndex(flow netsim.FlowKey, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(flow.Src))
	mix(uint64(flow.Dst))
	mix(uint64(flow.SrcPort)<<16 | uint64(flow.DstPort))
	mix(uint64(flow.Proto))
	// Finalize: multiplicative mixing alone leaves the low bits weak, and the
	// modulo below consumes exactly those bits.
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(n))
}

// ClockJitter deterministically assigns each switch a clock offset uniform in
// [−ε/2, +ε/2] so that any pair drifts by at most ε, the paper's asynchrony
// bound. Call before creating switches is impossible (offsets are fixed at
// construction), so builders take eps and a seed in their configs and use
// this helper internally.
func clockOffsets(n int, eps simtime.Time, seed int64) []simtime.Time {
	offs := make([]simtime.Time, n)
	if eps <= 0 {
		return offs
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range offs {
		offs[i] = simtime.Time(rng.Int63n(int64(eps)+1)) - eps/2
	}
	return offs
}
