package pointer

import (
	"encoding/binary"
	"fmt"
	"math"

	"switchpointer/internal/bitset"
)

// Backend selects the slot-set implementation behind every pointer slot —
// the memory/accuracy trade of the Fig 10 ablation.
//
// All backends answer the same Query/SlotsAt API; they differ in what a
// slot costs and whether its answer is exact:
//
//   - BackendAdaptive (the default): a sorted-index container that promotes
//     to a dense bitmap past the density threshold (occupancy > NumHosts/32,
//     where 4 bytes/member crosses the bitmap's fixed NumHosts/8 bytes).
//     Exact, with memory, recycle cost, and encoded push bytes all scaling
//     with occupancy instead of NumHosts.
//   - BackendDense: one NumHosts-bit bitmap per slot — the paper's §4.1.2
//     layout and the oracle the other backends are measured against.
//   - BackendBloom: a fixed-size per-slot bloom filter with a distinct-count
//     estimator: O(1) switch memory independent of both NumHosts and flow
//     count, at the price of one-sided error — a materialized slot is a
//     SUPERSET of the touched hosts (false positives possible, false
//     negatives never), flagged Approx on every result that includes it.
type Backend int

const (
	// BackendAdaptive is the zero value, so a zero Config selects it.
	BackendAdaptive Backend = iota
	BackendDense
	BackendBloom
)

// String returns the backend's flag spelling.
func (b Backend) String() string {
	switch b {
	case BackendAdaptive:
		return "adaptive"
	case BackendDense:
		return "dense"
	case BackendBloom:
		return "bloom"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend maps a flag spelling to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "adaptive", "":
		return BackendAdaptive, nil
	case "dense":
		return BackendDense, nil
	case "bloom":
		return BackendBloom, nil
	default:
		return 0, fmt.Errorf("pointer: unknown backend %q (want adaptive, dense, or bloom)", s)
	}
}

// Slot-payload kinds on the snapshot wire. Kind 0 is the dense bitset
// encoding legacy (pre-versioned) snapshots used for every slot, so a
// missing Kind field gob-decodes to the correct interpretation.
const (
	slotKindDense  byte = 0
	slotKindSparse byte = 1
	slotKindBloom  byte = 2
)

// slotSet is the backend seam: one pointer slot's membership container.
// Implementations are not safe for concurrent use (the Structure's
// single-writer contract covers them).
type slotSet interface {
	// add records host index i.
	add(i int)
	// reset empties the set for slot recycling, retaining buffers where
	// that is cheaper than reallocating.
	reset()
	// exact reports whether materialized membership is exactly the touched
	// set (false for sketches, whose answers are supersets).
	exact() bool
	// addTo sets the bit of every member — for sketches, every candidate —
	// in dst (width NumHosts).
	addTo(dst *bitset.Set)
	// occupancy returns the distinct-host count (an estimate for sketches).
	occupancy() int
	// memoryBytes returns the resident heap size of the container.
	memoryBytes() int
	// encodedBytes returns the wire size encode would produce now.
	encodedBytes() int
	// encode serializes the set as a kind-tagged payload.
	encode() (kind byte, payload []byte)
}

// denseSet is the exact-dense backend: the paper's NumHosts-bit bitmap.
type denseSet struct {
	bits *bitset.Set
}

func (d *denseSet) add(i int)             { d.bits.Set(i) }
func (d *denseSet) reset()                { d.bits.Reset() }
func (d *denseSet) exact() bool           { return true }
func (d *denseSet) addTo(dst *bitset.Set) { dst.UnionWith(d.bits) }
func (d *denseSet) occupancy() int        { return d.bits.Count() }
func (d *denseSet) memoryBytes() int      { return d.bits.SizeBytes() }
func (d *denseSet) encodedBytes() int     { return 8 + d.bits.SizeBytes() }
func (d *denseSet) encode() (byte, []byte) {
	payload, _ := d.bits.MarshalBinary() // never errors
	return slotKindDense, payload
}

// adaptiveSet is the exact-adaptive backend: sparse sorted indices that
// promote (one way, until recycled) to a dense bitmap past the density
// threshold, so cost follows occupancy in the sparse regime and falls back
// to the dense oracle's constants when a slot genuinely fills up.
type adaptiveSet struct {
	n      int
	sparse *bitset.Sparse // nil once promoted
	dense  *bitset.Set    // non-nil once promoted
}

// promoteAt is the occupancy above which sparse storage (4 B/member) costs
// more than the dense bitmap (n/8 B): n/32 members.
func (a *adaptiveSet) promoteAt() int { return a.n / 32 }

func (a *adaptiveSet) add(i int) {
	if a.dense != nil {
		a.dense.Set(i)
		return
	}
	a.sparse.Add(i)
	if a.sparse.Count() > a.promoteAt() {
		a.dense = bitset.New(a.n)
		a.sparse.AddTo(a.dense)
		a.sparse = nil
	}
}

// reset recycles in O(occupancy): a promoted slot drops its bitmap back to
// an empty sparse container (freeing the n/8 bytes); a sparse slot
// truncates in place, keeping its buffer.
func (a *adaptiveSet) reset() {
	if a.dense != nil {
		a.dense = nil
		a.sparse = bitset.NewSparse(a.n)
		return
	}
	a.sparse.Reset()
}

func (a *adaptiveSet) exact() bool { return true }

func (a *adaptiveSet) addTo(dst *bitset.Set) {
	if a.dense != nil {
		dst.UnionWith(a.dense)
		return
	}
	a.sparse.AddTo(dst)
}

func (a *adaptiveSet) occupancy() int {
	if a.dense != nil {
		return a.dense.Count()
	}
	return a.sparse.Count()
}

func (a *adaptiveSet) memoryBytes() int {
	if a.dense != nil {
		return a.dense.SizeBytes()
	}
	return a.sparse.MemoryBytes()
}

func (a *adaptiveSet) encodedBytes() int {
	if a.dense != nil {
		return 8 + a.dense.SizeBytes()
	}
	return 16 + 4*a.sparse.Count()
}

func (a *adaptiveSet) encode() (byte, []byte) {
	if a.dense != nil {
		payload, _ := a.dense.MarshalBinary()
		return slotKindDense, payload
	}
	payload, _ := a.sparse.MarshalBinary()
	return slotKindSparse, payload
}

// Bloom parameter defaults: 16 Kbit (2 KB) per slot, 4 hash probes. At the
// occupancies per-epoch slots see in the scenarios this keeps the
// false-positive rate negligible while staying constant in NumHosts.
const (
	defaultBloomBits   = 16384
	defaultBloomHashes = 4
)

// bloomSet is the sketch backend: a fixed m-bit bloom filter per slot.
// Membership answers are one-sided — addTo produces a SUPERSET of the
// touched hosts, never missing one — and occupancy is the standard
// fill-ratio estimator n̂ = −(m/k)·ln(1 − X/m).
type bloomSet struct {
	n, m, k int
	bits    *bitset.Set // m bits
}

func newBloomSet(n, m, k int) *bloomSet {
	return &bloomSet{n: n, m: m, k: k, bits: bitset.New(m)}
}

// mix64 is SplitMix64's finalizer: a deterministic, dependency-free 64-bit
// mixer driving the double-hashing probe sequence.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// probe returns the j-th bit position for host index i (double hashing:
// h1 + j·h2 mod m, h2 forced odd so the probe sequence cycles fully).
func (bl *bloomSet) probe(i, j int) int {
	h1 := mix64(uint64(i))
	h2 := mix64(h1) | 1
	return int((h1 + uint64(j)*h2) % uint64(bl.m))
}

func (bl *bloomSet) add(i int) {
	for j := 0; j < bl.k; j++ {
		bl.bits.Set(bl.probe(i, j))
	}
}

func (bl *bloomSet) has(i int) bool {
	for j := 0; j < bl.k; j++ {
		if !bl.bits.Get(bl.probe(i, j)) {
			return false
		}
	}
	return true
}

func (bl *bloomSet) reset()      { bl.bits.Reset() }
func (bl *bloomSet) exact() bool { return false }

// addTo materializes the candidate set: every host index the filter cannot
// rule out. O(n·k) — paid at pull time on the analyzer path, not on the
// per-packet datapath.
func (bl *bloomSet) addTo(dst *bitset.Set) {
	for i := 0; i < bl.n; i++ {
		if bl.has(i) {
			dst.Set(i)
		}
	}
}

func (bl *bloomSet) occupancy() int {
	x := bl.bits.Count()
	if x == 0 {
		return 0
	}
	if x >= bl.m {
		return bl.n
	}
	est := -(float64(bl.m) / float64(bl.k)) * math.Log(1-float64(x)/float64(bl.m))
	n := int(est + 0.5)
	if n > bl.n {
		n = bl.n
	}
	return n
}

func (bl *bloomSet) memoryBytes() int  { return bl.bits.SizeBytes() }
func (bl *bloomSet) encodedBytes() int { return 16 + 8 + bl.bits.SizeBytes() }

// encode lays out the bloom payload as 8 bytes m, 8 bytes k, then the
// filter's bitset encoding.
func (bl *bloomSet) encode() (byte, []byte) {
	bits, _ := bl.bits.MarshalBinary()
	payload := make([]byte, 16+len(bits))
	binary.LittleEndian.PutUint64(payload, uint64(bl.m))
	binary.LittleEndian.PutUint64(payload[8:], uint64(bl.k))
	copy(payload[16:], bits)
	return slotKindBloom, payload
}

// newSet constructs an empty slot set for the structure's backend.
func (s *Structure) newSet() slotSet {
	switch s.cfg.Backend {
	case BackendDense:
		return &denseSet{bits: bitset.New(s.cfg.NumHosts)}
	case BackendBloom:
		m, k := s.cfg.bloomParams()
		return newBloomSet(s.cfg.NumHosts, m, k)
	default:
		return &adaptiveSet{n: s.cfg.NumHosts, sparse: bitset.NewSparse(s.cfg.NumHosts)}
	}
}

// restorePayload rebuilds a slot's set from a kind-tagged snapshot payload.
// Exact payloads (dense, sparse) restore into ANY backend by re-inserting
// their members; a bloom payload carries no member list, so it restores
// only into a bloom structure with identical (m, k) parameters. A
// zero-length payload is an untouched (lazily unallocated) slot.
func (s *Structure) restorePayload(kind byte, payload []byte) (slotSet, error) {
	if len(payload) == 0 {
		return nil, nil
	}
	insertAll := func(fe func(func(int) bool)) slotSet {
		var set slotSet
		fe(func(i int) bool {
			if set == nil {
				set = s.newSet()
			}
			set.add(i)
			return true
		})
		return set
	}
	switch kind {
	case slotKindDense:
		var bs bitset.Set
		if err := bs.UnmarshalBinary(payload); err != nil {
			return nil, err
		}
		if bs.Len() != s.cfg.NumHosts {
			return nil, fmt.Errorf("pointer: slot payload width %d, want %d", bs.Len(), s.cfg.NumHosts)
		}
		if s.cfg.Backend == BackendDense && bs.Any() {
			return &denseSet{bits: &bs}, nil
		}
		return insertAll(bs.ForEach), nil
	case slotKindSparse:
		var sp bitset.Sparse
		if err := sp.UnmarshalBinary(payload); err != nil {
			return nil, err
		}
		if sp.Len() != s.cfg.NumHosts {
			return nil, fmt.Errorf("pointer: slot payload width %d, want %d", sp.Len(), s.cfg.NumHosts)
		}
		return insertAll(sp.ForEach), nil
	case slotKindBloom:
		if len(payload) < 16 {
			return nil, fmt.Errorf("pointer: truncated bloom payload (%d bytes)", len(payload))
		}
		if s.cfg.Backend != BackendBloom {
			return nil, fmt.Errorf("pointer: bloom slot payload cannot restore into a %s structure", s.cfg.Backend)
		}
		m := int(binary.LittleEndian.Uint64(payload))
		k := int(binary.LittleEndian.Uint64(payload[8:]))
		wantM, wantK := s.cfg.bloomParams()
		if m != wantM || k != wantK {
			return nil, fmt.Errorf("pointer: bloom parameter mismatch (snapshot m=%d k=%d, structure m=%d k=%d)", m, k, wantM, wantK)
		}
		bl := newBloomSet(s.cfg.NumHosts, m, k)
		if err := bl.bits.UnmarshalBinary(payload[16:]); err != nil {
			return nil, err
		}
		if !bl.bits.Any() {
			return nil, nil
		}
		return bl, nil
	default:
		return nil, fmt.Errorf("pointer: unknown slot payload kind %d", kind)
	}
}
