// Package pointer implements SwitchPointer's hierarchical pointer data
// structure (§4.1.1): the switch-resident directory that records, per time
// window, *which end-hosts* the switch forwarded packets to — not the
// telemetry itself, just pointers to where the telemetry lives.
//
// Geometry, for epoch size α (in ms) and k levels:
//
//   - level h (1 ≤ h < k) holds α slots; each slot is a pointer set over
//     end-hosts covering α^(h−1) consecutive epochs (α^h ms). The α slots at
//     level 1 give per-epoch resolution over the last α epochs.
//   - level k (top) holds a single slot covering α^(k−1) epochs (α^k ms);
//     when it seals it is pushed to the control plane for persistent storage.
//
// For the dense backend, total switch memory is (α·(k−1)+1)·S bits for
// pointer sets of S bits, and the data-plane→control-plane bandwidth is
// S·10³/α^k bps — the tradeoff curves of Fig 10. A slot at level h is
// recycled (α−1)·α^h ms after it seals (Fig 11).
//
// What a slot stores is a pluggable Backend: the exact-dense bitmap above
// (the oracle), an exact-adaptive container whose cost follows occupancy, or
// a constant-memory bloom sketch with one-sided error. Slots allocate
// lazily — an idle switch holds ring bookkeeping, not bitmaps.
//
// The data plane performs ONE minimal-perfect-hash operation per packet
// (done by the caller) and then sets the same bit index in the current slot
// of every level — k parallel bit sets, independent of k in hash work.
package pointer

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"switchpointer/internal/bitset"
	"switchpointer/internal/simtime"
)

// Config parameterizes one switch's pointer structure.
type Config struct {
	// Alpha is the epoch duration (the paper's α, typically 10–20 ms; the
	// commodity OpenFlow floor is ~15 ms, INT mode can go lower).
	Alpha simtime.Time
	// K is the number of hierarchy levels (the paper evaluates 1–5).
	K int
	// NumHosts is the maximum number of end-hosts (pointer-set universe,
	// the paper's n: 100 K or 1 M in §6.1).
	NumHosts int

	// Backend selects the slot-set implementation. The zero value is
	// BackendAdaptive; BackendDense is the paper's layout and the exactness
	// oracle; BackendBloom trades one-sided error for O(1) slot memory.
	Backend Backend
	// BloomBits and BloomHashes parameterize BackendBloom slots (zero
	// selects 16384 bits / 4 hashes). Setting either with a non-bloom
	// backend is rejected rather than silently ignored.
	BloomBits   int
	BloomHashes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Alpha <= 0 {
		return fmt.Errorf("pointer: Alpha must be positive, got %v", c.Alpha)
	}
	if c.K < 1 {
		return fmt.Errorf("pointer: K must be ≥ 1, got %d", c.K)
	}
	if c.K > 9 {
		return fmt.Errorf("pointer: K=%d would overflow epoch arithmetic", c.K)
	}
	if c.NumHosts < 1 {
		return fmt.Errorf("pointer: NumHosts must be ≥ 1, got %d", c.NumHosts)
	}
	switch c.Backend {
	case BackendAdaptive, BackendDense, BackendBloom:
	default:
		return fmt.Errorf("pointer: unknown backend %d", int(c.Backend))
	}
	if c.Backend != BackendBloom && (c.BloomBits != 0 || c.BloomHashes != 0) {
		return fmt.Errorf("pointer: BloomBits/BloomHashes set with %s backend (they would be inert)", c.Backend)
	}
	if c.BloomBits < 0 || (c.BloomBits > 0 && c.BloomBits < 8) {
		return fmt.Errorf("pointer: BloomBits must be ≥ 8, got %d", c.BloomBits)
	}
	if c.BloomHashes < 0 || c.BloomHashes > 16 {
		return fmt.Errorf("pointer: BloomHashes must be in [1,16], got %d", c.BloomHashes)
	}
	return nil
}

// bloomParams resolves the bloom filter geometry, applying defaults.
func (c Config) bloomParams() (m, k int) {
	m, k = c.BloomBits, c.BloomHashes
	if m == 0 {
		m = defaultBloomBits
	}
	if k == 0 {
		k = defaultBloomHashes
	}
	return m, k
}

// AlphaScalar returns α as the paper's dimensionless scalar: the number of
// slots per level and the per-level branching factor. It equals the epoch
// duration in milliseconds for millisecond-granular configs and is derived
// from the ratio Alpha/1ms, with a floor of 2 to keep the hierarchy
// meaningful for sub-millisecond epochs.
func (c Config) AlphaScalar() int {
	a := int(c.Alpha / simtime.Millisecond)
	if a < 2 {
		a = 2
	}
	return a
}

// Slot is one materialized pointer set: a bitmap over end-host indices
// covering a window of epochs. It is the exported snapshot form used for
// pulls, pushes, and the control store; the live structure holds backend
// containers, not Slots.
type Slot struct {
	Level  int                // 1-based; K is the top
	Epochs simtime.EpochRange // aligned window this slot covers
	Bits   *bitset.Set
	Sealed bool // true once its window has fully elapsed
	// Approx marks a sketch-backed slot: Bits is a superset of the touched
	// hosts (false positives possible, never false negatives).
	Approx bool
}

// liveSlot is the in-structure slot: ring bookkeeping plus a lazily
// allocated backend container (nil until the first touch).
type liveSlot struct {
	level  int
	epochs simtime.EpochRange
	sealed bool
	used   bool // window assigned (internal ring bookkeeping)
	set    slotSet
}

// PushFunc receives sealed top-level slots for persistent storage. The slot
// is a snapshot owned by the callee.
type PushFunc func(s Slot)

// Structure is the per-switch hierarchical pointer directory. It is not
// safe for concurrent use: in the simulator all access is serialized by the
// event engine, mirroring a real data plane's per-pipeline state.
type Structure struct {
	cfg   Config
	alpha int // slots per level / branching factor

	// levels[h-1] is the ring of slots at level h; top level has 1 slot.
	levels [][]*liveSlot
	cur    []int // current slot index per level

	epoch       simtime.Epoch // current epoch (last Advance)
	started     bool
	touches     uint64
	pushes      uint64
	pushedBytes uint64
	onPush      PushFunc

	// spanEpochs[h-1] = α^(h-1): epochs covered by one slot at level h.
	spanEpochs []int64
}

// New builds the structure. onPush may be nil. Slot containers are NOT
// allocated here: each slot's backend is built on its first Touch, so a
// structure over a million-host universe costs ring bookkeeping until
// traffic arrives.
func New(cfg Config, onPush PushFunc) (*Structure, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Structure{
		cfg:    cfg,
		alpha:  cfg.AlphaScalar(),
		onPush: onPush,
	}
	s.levels = make([][]*liveSlot, cfg.K)
	s.cur = make([]int, cfg.K)
	s.spanEpochs = make([]int64, cfg.K)
	span := int64(1)
	for h := 1; h <= cfg.K; h++ {
		nSlots := s.alpha
		if h == cfg.K {
			nSlots = 1
		}
		ring := make([]*liveSlot, nSlots)
		for i := range ring {
			ring[i] = &liveSlot{level: h}
		}
		s.levels[h-1] = ring
		s.spanEpochs[h-1] = span
		span *= int64(s.alpha)
	}
	return s, nil
}

// Config returns the structure's configuration.
func (s *Structure) Config() Config { return s.cfg }

// Alpha returns the branching factor / slots per level.
func (s *Structure) Alpha() int { return s.alpha }

// CurrentEpoch returns the epoch of the last Advance call.
func (s *Structure) CurrentEpoch() simtime.Epoch { return s.epoch }

// Touches returns the number of data-plane updates recorded.
func (s *Structure) Touches() uint64 { return s.touches }

// Pushes returns how many top-level slots have been pushed, and the total
// encoded bytes shipped to the control plane (backend-honest: occupancy-
// proportional for adaptive slots, constant for bloom, full width for
// dense).
func (s *Structure) Pushes() (count, bytes uint64) { return s.pushes, s.pushedBytes }

// slotWindow returns the aligned epoch window of the slot containing epoch e
// at level h.
func (s *Structure) slotWindow(h int, e simtime.Epoch) simtime.EpochRange {
	span := s.spanEpochs[h-1]
	lo := (int64(e) / span) * span
	if int64(e) < 0 && int64(e)%span != 0 {
		lo -= span
	}
	return simtime.EpochRange{Lo: simtime.Epoch(lo), Hi: simtime.Epoch(lo + span - 1)}
}

// Advance moves the structure to epoch e, sealing and recycling slots whose
// windows have elapsed. The control-plane agent calls this once per epoch
// boundary (§4.1.2: "an agent at the switch control plane updates a register
// with the memory address of the next pointer ... and resets its content").
// Epochs must advance monotonically.
func (s *Structure) Advance(e simtime.Epoch) {
	if s.started && e < s.epoch {
		panic(fmt.Sprintf("pointer: Advance moving backwards (%d < %d)", e, s.epoch))
	}
	if !s.started {
		s.started = true
		s.epoch = e
		for h := 1; h <= s.cfg.K; h++ {
			cur := s.currentSlot(h)
			cur.epochs = s.slotWindow(h, e)
			cur.used = true
		}
		return
	}
	for ; s.epoch < e; s.epoch++ {
		next := s.epoch + 1
		for h := 1; h <= s.cfg.K; h++ {
			cur := s.currentSlot(h)
			if next <= cur.epochs.Hi {
				continue // window still open
			}
			cur.sealed = true
			if h == s.cfg.K {
				s.push(cur)
			}
			// Rotate to the next slot in the ring and recycle it. An
			// allocated container is cleared in place (O(occupancy) for the
			// adaptive backend); an untouched slot stays unallocated.
			ring := s.levels[h-1]
			s.cur[h-1] = (s.cur[h-1] + 1) % len(ring)
			slot := ring[s.cur[h-1]]
			if slot.set != nil {
				slot.set.reset()
			}
			slot.sealed = false
			slot.epochs = s.slotWindow(h, next)
			slot.used = true
		}
	}
}

func (s *Structure) currentSlot(h int) *liveSlot { return s.levels[h-1][s.cur[h-1]] }

// materialize expands a live slot into the exported bitmap form. For exact
// backends this is the touched set; for sketches it is the candidate
// superset.
func (s *Structure) materialize(sl *liveSlot) *bitset.Set {
	out := bitset.New(s.cfg.NumHosts)
	if sl.set != nil {
		sl.set.addTo(out)
	}
	return out
}

// slotExact reports whether a live slot's materialized form is exact.
func slotExact(sl *liveSlot) bool { return sl.set == nil || sl.set.exact() }

// slotEncodedBytes is the wire size of one slot: the push/pull unit of the
// bandwidth accounting. An untouched slot still ships its backend's empty
// encoding — full width for dense (the paper's fixed S-bit push), the
// constant filter for bloom, a bare header for adaptive.
func (s *Structure) slotEncodedBytes(sl *liveSlot) int {
	if sl.set != nil {
		return sl.set.encodedBytes()
	}
	switch s.cfg.Backend {
	case BackendDense:
		return 8 + s.denseSlotBytes()
	case BackendBloom:
		return 16 + 8 + s.bloomSlotBytes()
	default:
		return 16 // empty sparse header
	}
}

// denseSlotBytes is the word-padded width of one dense pointer set.
func (s *Structure) denseSlotBytes() int { return (s.cfg.NumHosts + 63) / 64 * 8 }

// bloomSlotBytes is the word-padded width of one bloom filter.
func (s *Structure) bloomSlotBytes() int {
	m, _ := s.cfg.bloomParams()
	return (m + 63) / 64 * 8
}

func (s *Structure) push(slot *liveSlot) {
	s.pushes++
	s.pushedBytes += uint64(s.slotEncodedBytes(slot))
	if s.onPush != nil {
		s.onPush(Slot{
			Level:  slot.level,
			Epochs: slot.epochs,
			Bits:   s.materialize(slot),
			Sealed: true,
			Approx: !slotExact(slot),
		})
	}
}

// Touch records a packet to the end-host with MPH index idx: one bit set in
// the current slot of every level. The caller has already done the single
// hash operation; this is the k-way parallel bit write of §4.1.2. A slot's
// backend container is allocated on its first touch.
func (s *Structure) Touch(idx int) {
	if !s.started {
		panic("pointer: Touch before first Advance")
	}
	s.touches++
	for h := 1; h <= s.cfg.K; h++ {
		slot := s.currentSlot(h)
		if slot.set == nil {
			slot.set = s.newSet()
		}
		slot.set.add(idx)
	}
}

// QueryResult reports how a pointer query was satisfied.
type QueryResult struct {
	// Level the slots were taken from (0 if nothing was available).
	Level int
	// Slots actually consulted.
	Slots int
	// Covered is true when the union of consulted slot windows contains the
	// whole requested range. When false the caller should fall back to the
	// control plane's pushed history.
	Covered bool
	// SlotsCopiedBytes models the pull-bandwidth cost of the query: the
	// encoded size of every consulted slot.
	SlotsCopiedBytes int
	// Exact is true when the returned set is exactly the touched hosts;
	// false when any consulted slot is sketch-backed, making the set a
	// superset (candidates, never missing a touched host).
	Exact bool
}

// Query returns the union of end-host bits for all epochs in r, using the
// finest level whose live slots cover the range (the pull model of §4.1.1:
// recent epochs from level 1, older windows from coarser levels).
func (s *Structure) Query(r simtime.EpochRange) (*bitset.Set, QueryResult) {
	out := bitset.New(s.cfg.NumHosts)
	if r.Len() == 0 {
		return out, QueryResult{Covered: true, Exact: true}
	}
	best := QueryResult{Exact: true}
	for h := 1; h <= s.cfg.K; h++ {
		hits := 0
		bytes := 0
		exact := true
		coveredLo := simtime.Epoch(1 << 62)
		coveredHi := simtime.Epoch(-(1 << 62))
		tmp := bitset.New(s.cfg.NumHosts)
		for _, slot := range s.levels[h-1] {
			if !slot.used || !slot.epochs.Overlaps(r) {
				continue
			}
			hits++
			bytes += s.slotEncodedBytes(slot)
			if slot.set != nil {
				slot.set.addTo(tmp)
			}
			exact = exact && slotExact(slot)
			if slot.epochs.Lo < coveredLo {
				coveredLo = slot.epochs.Lo
			}
			if slot.epochs.Hi > coveredHi {
				coveredHi = slot.epochs.Hi
			}
		}
		if hits == 0 {
			continue
		}
		// Live slots at one level are contiguous in time, so [lo,hi]
		// coverage implies full coverage of the overlap.
		covered := coveredLo <= r.Lo && coveredHi >= r.Hi
		res := QueryResult{Level: h, Slots: hits, Covered: covered, SlotsCopiedBytes: bytes, Exact: exact}
		if covered {
			out.UnionWith(tmp)
			return out, res
		}
		// Remember the coarsest partial answer; coarser levels retain more
		// history, so keep ascending.
		best = res
		out.Reset()
		out.UnionWith(tmp)
	}
	return out, best
}

// SlotsAt returns snapshots of the live slots at level h that overlap r, in
// ascending window order. The analyzer's pull API uses this to fetch "the
// five most recent sets of pointers from level 1"-style requests.
func (s *Structure) SlotsAt(h int, r simtime.EpochRange) []Slot {
	if h < 1 || h > s.cfg.K {
		return nil
	}
	var out []Slot
	for _, slot := range s.levels[h-1] {
		if !slot.used || !slot.epochs.Overlaps(r) {
			continue
		}
		out = append(out, Slot{
			Level:  h,
			Epochs: slot.epochs,
			Bits:   s.materialize(slot),
			Sealed: slot.sealed,
			Approx: !slotExact(slot),
		})
	}
	// Ring order is rotation order; sort by window.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Epochs.Lo < out[j-1].Epochs.Lo; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MemoryBytes returns the structure's modeled (provisioned) pointer-set
// memory — the Fig 10(a) quantity (the MPH table is accounted separately by
// the datapath that owns it):
//
//   - dense: (α·(k−1)+1)·S/8 bytes — the paper's fixed layout, independent
//     of lazy allocation, so the Fig 10 curves are stable.
//   - bloom: (α·(k−1)+1)·m/8 bytes — constant in NumHosts.
//   - adaptive: the resident footprint (its provisioning follows occupancy).
//
// Use ResidentBytes for the actually-allocated heap size of any backend.
func (s *Structure) MemoryBytes() int {
	switch s.cfg.Backend {
	case BackendDense:
		return s.totalSlots() * s.denseSlotBytes()
	case BackendBloom:
		return s.totalSlots() * s.bloomSlotBytes()
	default:
		return s.ResidentBytes()
	}
}

// ResidentBytes returns the heap actually allocated by slot containers —
// zero for a freshly built structure, occupancy-proportional for adaptive,
// bounded by the modeled geometry for dense and bloom.
func (s *Structure) ResidentBytes() int {
	total := 0
	for _, ring := range s.levels {
		for _, slot := range ring {
			if slot.set != nil {
				total += slot.set.memoryBytes()
			}
		}
	}
	return total
}

func (s *Structure) totalSlots() int {
	total := 0
	for _, ring := range s.levels {
		total += len(ring)
	}
	return total
}

// PushBandwidthBps returns the modeled steady-state data-plane→control-plane
// bandwidth: one top slot every α^k ms. For the exact backends the slot is
// provisioned at S word-padded bits (S·10³/α^k bps, Fig 10(b) — adaptive's
// actual pushes are smaller, see Pushes); for bloom it is the constant
// m-bit filter.
func (s *Structure) PushBandwidthBps() float64 {
	width := s.denseSlotBytes()
	if s.cfg.Backend == BackendBloom {
		width = s.bloomSlotBytes()
	}
	sBits := float64(width * 8)
	periodMs := float64(s.spanEpochs[s.cfg.K-1]) * s.cfg.Alpha.Milliseconds()
	return sBits * 1000.0 / periodMs
}

// RecyclingPeriod returns how long after a level-h slot seals its memory is
// reused: (α−1)·α^h ms (Fig 11; the top level has no ring and recycles
// immediately, reported as 0).
func (s *Structure) RecyclingPeriod(h int) simtime.Time {
	if h < 1 || h >= s.cfg.K {
		return 0
	}
	// (α−1) slots of α^(h−1) epochs each elapse before reuse.
	return simtime.Time(int64(s.alpha-1)*s.spanEpochs[h-1]) * s.cfg.Alpha
}

// snapVersionTagged marks snapshots whose slots carry kind-tagged payloads.
// Version 0 is the legacy wire form: every payload a dense bitset — which
// kind 0 (slotKindDense) also names, so legacy slotSnaps (no Kind field)
// gob-decode to the correct interpretation.
const snapVersionTagged = 2

// slotSnap is one slot's gob wire form: a kind-tagged payload (nil for an
// untouched, unallocated slot).
type slotSnap struct {
	Epochs simtime.EpochRange
	Bits   []byte
	Sealed bool
	Used   bool
	Kind   byte
}

// structSnap is the Structure's gob wire form — the state-sync snapshot a
// replica switch agent restores so its pointer pulls answer byte-identically
// to the source's.
type structSnap struct {
	Version  int
	Alpha    simtime.Time
	K        int
	NumHosts int

	Epoch       simtime.Epoch
	Started     bool
	Touches     uint64
	Pushes      uint64
	PushedBytes uint64
	Cur         []int
	Levels      [][]slotSnap
}

// Snapshot serializes the structure's complete live state: every slot of
// every level (window, kind-tagged set payload, sealed/used flags), the
// ring positions, the current epoch, and the touch/push accounting.
func (s *Structure) Snapshot() ([]byte, error) {
	snap := structSnap{
		Version:     snapVersionTagged,
		Alpha:       s.cfg.Alpha,
		K:           s.cfg.K,
		NumHosts:    s.cfg.NumHosts,
		Epoch:       s.epoch,
		Started:     s.started,
		Touches:     s.touches,
		Pushes:      s.pushes,
		PushedBytes: s.pushedBytes,
		Cur:         append([]int(nil), s.cur...),
	}
	snap.Levels = make([][]slotSnap, len(s.levels))
	for h, ring := range s.levels {
		snap.Levels[h] = make([]slotSnap, len(ring))
		for i, slot := range ring {
			ss := slotSnap{Epochs: slot.epochs, Sealed: slot.sealed, Used: slot.used, Kind: slotKindDense}
			if slot.set != nil {
				ss.Kind, ss.Bits = slot.set.encode()
			}
			snap.Levels[h][i] = ss
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("pointer: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the structure's live state with a Snapshot taken from a
// structure of identical geometry (same Alpha, K, NumHosts); a geometry
// mismatch is rejected, since slot windows and universe widths would not
// line up. The BACKEND need not match: exact slot payloads (dense or
// sparse) restore into any backend by re-inserting their members — a legacy
// all-dense snapshot restores everywhere — while a bloom payload restores
// only into a bloom structure with identical filter parameters (the member
// list cannot be recovered from a sketch). Epoch monotonicity continues
// from the restored epoch.
func (s *Structure) Restore(b []byte) error {
	var snap structSnap
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return fmt.Errorf("pointer: restore: %w", err)
	}
	if snap.Alpha != s.cfg.Alpha || snap.K != s.cfg.K || snap.NumHosts != s.cfg.NumHosts {
		return fmt.Errorf("pointer: restore: geometry mismatch (snapshot α=%v k=%d n=%d, structure α=%v k=%d n=%d)",
			snap.Alpha, snap.K, snap.NumHosts, s.cfg.Alpha, s.cfg.K, s.cfg.NumHosts)
	}
	if len(snap.Levels) != len(s.levels) || len(snap.Cur) != len(s.cur) {
		return fmt.Errorf("pointer: restore: malformed snapshot (%d levels)", len(snap.Levels))
	}
	for h, ring := range s.levels {
		if len(snap.Levels[h]) != len(ring) {
			return fmt.Errorf("pointer: restore: level %d has %d slots, want %d", h+1, len(snap.Levels[h]), len(ring))
		}
		if snap.Cur[h] < 0 || snap.Cur[h] >= len(ring) {
			return fmt.Errorf("pointer: restore: level %d ring position %d out of range", h+1, snap.Cur[h])
		}
	}
	// Decode every payload before mutating any slot, so a bad snapshot
	// leaves the structure untouched.
	sets := make([][]slotSet, len(s.levels))
	for h, ring := range s.levels {
		sets[h] = make([]slotSet, len(ring))
		for i := range ring {
			ss := snap.Levels[h][i]
			set, err := s.restorePayload(ss.Kind, ss.Bits)
			if err != nil {
				return fmt.Errorf("pointer: restore: level %d slot %d: %w", h+1, i, err)
			}
			sets[h][i] = set
		}
	}
	for h, ring := range s.levels {
		for i, slot := range ring {
			ss := snap.Levels[h][i]
			slot.set = sets[h][i]
			slot.epochs = ss.Epochs
			slot.sealed = ss.Sealed
			slot.used = ss.Used
		}
	}
	copy(s.cur, snap.Cur)
	s.epoch = snap.Epoch
	s.started = snap.Started
	s.touches = snap.Touches
	s.pushes = snap.Pushes
	s.pushedBytes = snap.PushedBytes
	return nil
}

// slotWire is one exported Slot's gob wire form (EncodeSlots/DecodeSlots):
// the control-store history a state-sync snapshot carries next to the live
// structure. Slots are materialized bitmaps here regardless of backend;
// Approx rides along so candidate semantics survive the wire (absent in
// legacy encodings, decoding as exact — which legacy slots were).
type slotWire struct {
	Level  int
	Epochs simtime.EpochRange
	Bits   []byte
	Sealed bool
	Approx bool
}

// EncodeSlots serializes a slot list (typically a switch agent's control
// store — the pushed top-level history) for the state-sync wire.
func EncodeSlots(slots []Slot) ([]byte, error) {
	wire := make([]slotWire, len(slots))
	for i, s := range slots {
		bits, err := s.Bits.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("pointer: encode slots: %w", err)
		}
		wire[i] = slotWire{Level: s.Level, Epochs: s.Epochs, Bits: bits, Sealed: s.Sealed, Approx: s.Approx}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("pointer: encode slots: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSlots restores a slot list written by EncodeSlots.
func DecodeSlots(b []byte) ([]Slot, error) {
	var wire []slotWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("pointer: decode slots: %w", err)
	}
	slots := make([]Slot, len(wire))
	for i, w := range wire {
		var bits bitset.Set
		if err := bits.UnmarshalBinary(w.Bits); err != nil {
			return nil, fmt.Errorf("pointer: decode slots: %w", err)
		}
		slots[i] = Slot{Level: w.Level, Epochs: w.Epochs, Bits: &bits, Sealed: w.Sealed, Approx: w.Approx}
	}
	return slots, nil
}

// TheoreticalMemoryBits returns the paper's closed-form memory formula
// α(k−1)·S + S for S-bit pointer sets, used by the Fig 10(a) harness to
// cross-check the measured structure.
func TheoreticalMemoryBits(alpha, k, sBits int) int64 {
	return int64(alpha)*int64(k-1)*int64(sBits) + int64(sBits)
}

// TheoreticalBandwidthBps returns the paper's closed-form bandwidth formula
// S·10³/α^k bps for S-bit pointer sets and α in milliseconds.
func TheoreticalBandwidthBps(alpha, k, sBits int) float64 {
	den := 1.0
	for i := 0; i < k; i++ {
		den *= float64(alpha)
	}
	return float64(sBits) * 1000.0 / den
}
