package pointer

import (
	"testing"

	"switchpointer/internal/simtime"
)

func mustNew(t *testing.T, cfg Config, onPush PushFunc) *Structure {
	t.Helper()
	s, err := New(cfg, onPush)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cfg10x3(n int) Config {
	return Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: n}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Alpha: 0, K: 1, NumHosts: 1},
		{Alpha: simtime.Millisecond, K: 0, NumHosts: 1},
		{Alpha: simtime.Millisecond, K: 10, NumHosts: 1},
		{Alpha: simtime.Millisecond, K: 1, NumHosts: 0},
		{Alpha: simtime.Millisecond, K: 1, NumHosts: 1, Backend: Backend(99)},
		// Bloom knobs with a non-bloom backend would be silently inert.
		{Alpha: simtime.Millisecond, K: 1, NumHosts: 1, BloomBits: 1024},
		{Alpha: simtime.Millisecond, K: 1, NumHosts: 1, Backend: BackendDense, BloomHashes: 3},
		{Alpha: simtime.Millisecond, K: 1, NumHosts: 1, Backend: BackendBloom, BloomBits: 4},
		{Alpha: simtime.Millisecond, K: 1, NumHosts: 1, Backend: BackendBloom, BloomHashes: 99},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := cfg10x3(10).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestAlphaScalar(t *testing.T) {
	if (Config{Alpha: 10 * simtime.Millisecond}).AlphaScalar() != 10 {
		t.Fatalf("10ms should give α=10")
	}
	if (Config{Alpha: 20 * simtime.Millisecond}).AlphaScalar() != 20 {
		t.Fatalf("20ms should give α=20")
	}
	if (Config{Alpha: 100 * simtime.Microsecond}).AlphaScalar() != 2 {
		t.Fatalf("sub-ms alpha should floor the scalar at 2")
	}
}

func TestGeometry(t *testing.T) {
	s := mustNew(t, cfg10x3(64), nil)
	if len(s.levels[0]) != 10 || len(s.levels[1]) != 10 || len(s.levels[2]) != 1 {
		t.Fatalf("ring sizes: %d %d %d", len(s.levels[0]), len(s.levels[1]), len(s.levels[2]))
	}
	if s.spanEpochs[0] != 1 || s.spanEpochs[1] != 10 || s.spanEpochs[2] != 100 {
		t.Fatalf("spans: %v", s.spanEpochs)
	}
}

func TestMemoryAccounting(t *testing.T) {
	// n=100K, α=10, k=3: paper quotes 3.45 MB total with the MPH; the
	// pointer sets alone are (10·2+1)·12.5KB = 262.5 KB... for n=1M:
	// (10·2+1)·125KB = 2.625 MB. Check against the closed form.
	s := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: 100000, Backend: BackendDense}, nil)
	sBits := 12504 * 8 // ceil(100000/64) words
	want := TheoreticalMemoryBits(10, 3, sBits) / 8
	if got := int64(s.MemoryBytes()); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	// n=1M, α=10, k=1 → S=1Mbit pushed every 10ms = 100 Mbps (Fig 10b).
	s := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 1, NumHosts: 1000000, Backend: BackendDense}, nil)
	got := s.PushBandwidthBps()
	sBits := float64(((1000000 + 63) / 64) * 64) // padded to words
	want := sBits * 1000 / 10
	if got != want {
		t.Fatalf("PushBandwidthBps = %g, want %g", got, want)
	}
	// k=2 divides by another factor of 10.
	s2 := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: 1000000, Backend: BackendDense}, nil)
	if s2.PushBandwidthBps() != want/10 {
		t.Fatalf("k=2 bandwidth = %g, want %g", s2.PushBandwidthBps(), want/10)
	}
}

func TestRecyclingPeriod(t *testing.T) {
	s := mustNew(t, cfg10x3(8), nil)
	if got := s.RecyclingPeriod(1); got != 90*simtime.Millisecond {
		t.Fatalf("level 1 = %v, want 90ms", got)
	}
	if got := s.RecyclingPeriod(2); got != 900*simtime.Millisecond {
		t.Fatalf("level 2 = %v, want 900ms", got)
	}
	if s.RecyclingPeriod(3) != 0 || s.RecyclingPeriod(0) != 0 {
		t.Fatalf("top/invalid levels should report 0")
	}
}

func TestTouchBeforeAdvancePanics(t *testing.T) {
	s := mustNew(t, cfg10x3(8), nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	s.Touch(0)
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	s := mustNew(t, cfg10x3(8), nil)
	s.Advance(5)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	s.Advance(4)
}

func TestTouchSetsAllLevels(t *testing.T) {
	s := mustNew(t, cfg10x3(64), nil)
	s.Advance(0)
	s.Touch(7)
	for h := 1; h <= 3; h++ {
		slots := s.SlotsAt(h, simtime.EpochRange{Lo: 0, Hi: 0})
		if len(slots) != 1 || !slots[0].Bits.Get(7) {
			t.Fatalf("level %d missing bit", h)
		}
	}
	if s.Touches() != 1 {
		t.Fatalf("Touches = %d", s.Touches())
	}
}

func TestLazyAllocation(t *testing.T) {
	for _, be := range []Backend{BackendAdaptive, BackendDense, BackendBloom} {
		cfg := cfg10x3(100000)
		cfg.Backend = be
		s := mustNew(t, cfg, nil)
		s.Advance(0)
		if got := s.ResidentBytes(); got != 0 {
			t.Fatalf("%s: idle structure resident = %d, want 0", be, got)
		}
		s.Touch(42)
		// One touch allocates the current slot of each level, nothing else.
		if got := s.ResidentBytes(); got == 0 {
			t.Fatalf("%s: touched structure resident = 0", be)
		}
		if be == BackendAdaptive {
			if got := s.ResidentBytes(); got > 1024 {
				t.Fatalf("adaptive: one touch resident = %d, want ~KBs", got)
			}
		}
	}
}

func TestAdaptivePromotionMatchesDense(t *testing.T) {
	// Drive one slot far past the density threshold and check membership
	// against the dense oracle across the promotion boundary.
	cfgA := cfg10x3(512)
	cfgD := cfg10x3(512)
	cfgD.Backend = BackendDense
	a := mustNew(t, cfgA, nil)
	d := mustNew(t, cfgD, nil)
	a.Advance(0)
	d.Advance(0)
	for i := 0; i < 512; i += 2 {
		a.Touch(i)
		d.Touch(i)
	}
	ba, ra := a.Query(simtime.EpochRange{Lo: 0, Hi: 0})
	bd, rd := d.Query(simtime.EpochRange{Lo: 0, Hi: 0})
	if !ba.Equal(bd) {
		t.Fatalf("adaptive diverged from dense after promotion")
	}
	if !ra.Exact || !rd.Exact {
		t.Fatalf("exact backends reported approximate results: %+v %+v", ra, rd)
	}
}

func TestRotationPerEpochLevel1(t *testing.T) {
	s := mustNew(t, cfg10x3(64), nil)
	s.Advance(0)
	s.Touch(1)
	s.Advance(1)
	s.Touch(2)

	// Epoch 0 and epoch 1 live in different level-1 slots.
	slots := s.SlotsAt(1, simtime.EpochRange{Lo: 0, Hi: 1})
	if len(slots) != 2 {
		t.Fatalf("level-1 slots = %d, want 2", len(slots))
	}
	if !slots[0].Bits.Get(1) || slots[0].Bits.Get(2) {
		t.Fatalf("epoch-0 slot contents wrong")
	}
	if !slots[1].Bits.Get(2) || slots[1].Bits.Get(1) {
		t.Fatalf("epoch-1 slot contents wrong")
	}
	if !slots[0].Sealed || slots[1].Sealed {
		t.Fatalf("sealing wrong: %v %v", slots[0].Sealed, slots[1].Sealed)
	}
	// Level 2's single current slot covers both epochs.
	l2 := s.SlotsAt(2, simtime.EpochRange{Lo: 0, Hi: 1})
	if len(l2) != 1 || !l2[0].Bits.Get(1) || !l2[0].Bits.Get(2) {
		t.Fatalf("level-2 aggregation wrong")
	}
}

func TestLevel1RecyclingLosesOldEpochs(t *testing.T) {
	s := mustNew(t, cfg10x3(64), nil)
	s.Advance(0)
	s.Touch(3)
	// Advance 10 epochs: the epoch-0 slot is recycled at epoch 10.
	s.Advance(10)
	slots := s.SlotsAt(1, simtime.EpochRange{Lo: 0, Hi: 0})
	if len(slots) != 0 {
		t.Fatalf("epoch-0 level-1 slot should be recycled, got %d slots", len(slots))
	}
	// But level 2 still covers epoch 0 (slot [0,9] sealed, in ring).
	l2 := s.SlotsAt(2, simtime.EpochRange{Lo: 0, Hi: 0})
	if len(l2) != 1 || !l2[0].Bits.Get(3) {
		t.Fatalf("level-2 should retain epoch 0")
	}
}

func TestQueryPrefersFinestLevel(t *testing.T) {
	s := mustNew(t, cfg10x3(64), nil)
	s.Advance(0)
	for e := simtime.Epoch(0); e < 8; e++ {
		s.Advance(e)
		s.Touch(int(e))
	}
	bits, res := s.Query(simtime.EpochRange{Lo: 5, Hi: 6})
	if res.Level != 1 || !res.Covered {
		t.Fatalf("res = %+v, want level 1 covered", res)
	}
	if !bits.Get(5) || !bits.Get(6) {
		t.Fatalf("query missing touched hosts")
	}
	// Level-1 union over [5,6] must not include epoch-7-only hosts.
	if bits.Get(7) {
		t.Fatalf("query leaked neighbour epoch at level 1")
	}
	if res.Slots != 2 {
		t.Fatalf("Slots = %d, want 2", res.Slots)
	}
}

func TestQueryFallsBackToCoarserLevel(t *testing.T) {
	s := mustNew(t, cfg10x3(64), nil)
	s.Advance(0)
	s.Touch(1)
	s.Advance(25) // epoch 0 long gone from level 1; level 2 slot [0,9] sealed and still live
	bits, res := s.Query(simtime.EpochRange{Lo: 0, Hi: 0})
	if res.Level != 2 || !res.Covered {
		t.Fatalf("res = %+v, want level 2 covered", res)
	}
	if !bits.Get(1) {
		t.Fatalf("coarse query lost host")
	}
}

func TestQueryUncoveredFallsToTop(t *testing.T) {
	s := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: 8}, nil)
	s.Advance(0)
	s.Touch(2)
	// Level 2 (top) covers [0,9] only while current; advance far enough that
	// even the top slot recycled: top rotates at epoch 10.
	s.Advance(12)
	_, res := s.Query(simtime.EpochRange{Lo: 0, Hi: 0})
	if res.Covered {
		t.Fatalf("ancient epoch should be uncovered, res=%+v", res)
	}
}

func TestTopLevelPush(t *testing.T) {
	var pushed []Slot
	s := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: 64},
		func(slot Slot) { pushed = append(pushed, slot) })
	s.Advance(0)
	s.Touch(5)
	s.Advance(10) // top slot [0,9] seals
	if len(pushed) != 1 {
		t.Fatalf("pushes = %d, want 1", len(pushed))
	}
	p := pushed[0]
	if p.Epochs.Lo != 0 || p.Epochs.Hi != 9 || !p.Sealed || p.Level != 2 {
		t.Fatalf("pushed slot = %+v", p)
	}
	if !p.Bits.Get(5) {
		t.Fatalf("pushed slot lost host bit")
	}
	// Push snapshot is independent of the live structure.
	s.Touch(6)
	if p.Bits.Get(6) {
		t.Fatalf("pushed slot aliases live bits")
	}
	count, bytes := s.Pushes()
	if count != 1 || bytes == 0 {
		t.Fatalf("push accounting: %d %d", count, bytes)
	}
}

func TestPushCadence(t *testing.T) {
	var pushes int
	s := mustNew(t, cfg10x3(8), func(Slot) { pushes++ })
	s.Advance(0)
	s.Advance(350) // top covers 100 epochs; 3 full windows elapse
	if pushes != 3 {
		t.Fatalf("pushes = %d, want 3", pushes)
	}
}

func TestK1SingleLevel(t *testing.T) {
	var pushes int
	s := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 1, NumHosts: 16, Backend: BackendDense},
		func(Slot) { pushes++ })
	s.Advance(0)
	s.Touch(3)
	s.Advance(1)
	if pushes != 1 {
		t.Fatalf("k=1 should push every epoch, got %d", pushes)
	}
	if s.MemoryBytes() != ((16+63)/64)*8 {
		t.Fatalf("k=1 memory = %d", s.MemoryBytes())
	}
}

func TestQueryEmptyRange(t *testing.T) {
	s := mustNew(t, cfg10x3(8), nil)
	s.Advance(0)
	bits, res := s.Query(simtime.EpochRange{Lo: 5, Hi: 4})
	if bits.Any() || !res.Covered {
		t.Fatalf("empty range query wrong: %+v", res)
	}
}

func TestSlotsAtInvalidLevel(t *testing.T) {
	s := mustNew(t, cfg10x3(8), nil)
	if s.SlotsAt(0, simtime.EpochRange{}) != nil || s.SlotsAt(9, simtime.EpochRange{}) != nil {
		t.Fatalf("invalid levels should return nil")
	}
}

func TestAdvanceStartMidStream(t *testing.T) {
	// Structures may boot at a nonzero epoch (switch restarted mid-day).
	s := mustNew(t, cfg10x3(64), nil)
	s.Advance(1234)
	s.Touch(1)
	slots := s.SlotsAt(1, simtime.EpochRange{Lo: 1234, Hi: 1234})
	if len(slots) != 1 || !slots[0].Bits.Get(1) {
		t.Fatalf("mid-stream start broken")
	}
	// Windows are aligned to absolute epoch numbers.
	l2 := s.SlotsAt(2, simtime.EpochRange{Lo: 1234, Hi: 1234})
	if len(l2) != 1 || l2[0].Epochs.Lo != 1230 || l2[0].Epochs.Hi != 1239 {
		t.Fatalf("level-2 window = %v", l2[0].Epochs)
	}
}

func TestTheoreticalFormulas(t *testing.T) {
	// Fig 10(a) anchor: n=1M, α=10, k=3 → α(k−1)S+S = 21·1Mbit ≈ 2.625 MB
	// of pointer sets (paper: 3.45 MB including the 700KB MPH + overheads).
	bits := TheoreticalMemoryBits(10, 3, 1000000)
	if bits != 21_000_000 {
		t.Fatalf("TheoreticalMemoryBits = %d", bits)
	}
	// Fig 10(b) anchor: n=1M, α=10, k=1 → 100 Mbps.
	if bps := TheoreticalBandwidthBps(10, 1, 1000000); bps != 100_000_000 {
		t.Fatalf("TheoreticalBandwidthBps = %g", bps)
	}
	if bps := TheoreticalBandwidthBps(10, 2, 1000000); bps != 10_000_000 {
		t.Fatalf("k=2 should cut bandwidth 10×, got %g", bps)
	}
}

func TestHierarchicalRedundancy(t *testing.T) {
	// The defining redundancy property (§4.1.1): the level-(h+1) slot for a
	// window is the union of the level-h slots within that window.
	s := mustNew(t, cfg10x3(128), nil)
	s.Advance(0)
	for e := simtime.Epoch(0); e < 10; e++ {
		s.Advance(e)
		s.Touch(int(e) * 3)
	}
	l2 := s.SlotsAt(2, simtime.EpochRange{Lo: 0, Hi: 9})
	if len(l2) != 1 {
		t.Fatalf("level-2 slots = %d", len(l2))
	}
	union, res := s.Query(simtime.EpochRange{Lo: 0, Hi: 9})
	if res.Level != 1 || !res.Covered {
		t.Fatalf("level-1 should cover [0,9]: %+v", res)
	}
	if !union.Equal(l2[0].Bits) {
		t.Fatalf("level-2 slot != union of level-1 slots")
	}
}
