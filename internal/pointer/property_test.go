package pointer

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"

	"switchpointer/internal/simtime"
)

// TestPropertyLevelKSupersetsLevel1 checks the defining containment invariant
// under random touch/advance interleavings: for any epoch window still
// retained at level 1, the covering slot at any higher level contains (as a
// superset) the union of the level-1 slots.
func TestPropertyLevelKSupersetsLevel1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: 64}, nil)
		if err != nil {
			return false
		}
		s.Advance(0)
		epoch := simtime.Epoch(0)
		for op := 0; op < 200; op++ {
			if rng.Intn(3) == 0 {
				epoch += simtime.Epoch(rng.Intn(3))
				s.Advance(epoch)
			} else {
				s.Touch(rng.Intn(64))
			}
		}
		// For each live level-1 slot, the level-2 slot covering its window
		// must be a superset.
		for _, l1 := range s.SlotsAt(1, simtime.EpochRange{Lo: 0, Hi: epoch}) {
			l2s := s.SlotsAt(2, l1.Epochs)
			if len(l2s) == 0 {
				continue // level-2 slot may have recycled in long runs
			}
			union := l2s[0].Bits.Clone()
			for _, o := range l2s[1:] {
				union.UnionWith(o.Bits)
			}
			ok := true
			l1.Bits.ForEach(func(i int) bool {
				if !union.Get(i) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQueryNeverMissesRetainedTouches replays a random schedule of
// touches against a brute-force oracle: whenever Query reports Covered for a
// range, it must include every host touched in that range.
func TestPropertyQueryNeverMissesRetainedTouches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: 32}, nil)
		if err != nil {
			return false
		}
		s.Advance(0)
		// oracle[e] = set of hosts touched during epoch e.
		oracle := map[simtime.Epoch]map[int]bool{}
		epoch := simtime.Epoch(0)
		for op := 0; op < 150; op++ {
			if rng.Intn(4) == 0 {
				epoch++
				s.Advance(epoch)
			} else {
				idx := rng.Intn(32)
				s.Touch(idx)
				if oracle[epoch] == nil {
					oracle[epoch] = map[int]bool{}
				}
				oracle[epoch][idx] = true
			}
		}
		// Random queries.
		for q := 0; q < 20; q++ {
			lo := simtime.Epoch(rng.Intn(int(epoch) + 1))
			hi := lo + simtime.Epoch(rng.Intn(5))
			bits, res := s.Query(simtime.EpochRange{Lo: lo, Hi: hi})
			if !res.Covered {
				continue
			}
			for e := lo; e <= hi && e <= epoch; e++ {
				for idx := range oracle[e] {
					if !bits.Get(idx) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoFalseHostsAtLevel1 checks the converse at the finest level:
// a level-1-covered query returns no host that was not touched in the range.
func TestPropertyNoFalseHostsAtLevel1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: 32}, nil)
		if err != nil {
			return false
		}
		s.Advance(0)
		oracle := map[simtime.Epoch]map[int]bool{}
		epoch := simtime.Epoch(0)
		for op := 0; op < 100; op++ {
			if rng.Intn(4) == 0 {
				epoch++
				s.Advance(epoch)
			} else {
				idx := rng.Intn(32)
				s.Touch(idx)
				if oracle[epoch] == nil {
					oracle[epoch] = map[int]bool{}
				}
				oracle[epoch][idx] = true
			}
		}
		for q := 0; q < 20; q++ {
			lo := simtime.Epoch(rng.Intn(int(epoch) + 1))
			hi := lo + simtime.Epoch(rng.Intn(3))
			bits, res := s.Query(simtime.EpochRange{Lo: lo, Hi: hi})
			if res.Level != 1 || !res.Covered {
				continue
			}
			okAll := true
			bits.ForEach(func(idx int) bool {
				found := false
				for e := lo; e <= hi; e++ {
					if oracle[e][idx] {
						found = true
						break
					}
				}
				if !found {
					okAll = false
					return false
				}
				return true
			})
			if !okAll {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// driveLockstep applies one random touch/advance schedule to every structure
// in ss, returning the final epoch. All structures see identical inputs, so
// exact backends must end membership-identical.
func driveLockstep(rng *rand.Rand, ops, hosts int, ss ...*Structure) simtime.Epoch {
	for _, s := range ss {
		s.Advance(0)
	}
	epoch := simtime.Epoch(0)
	for op := 0; op < ops; op++ {
		if rng.Intn(4) == 0 {
			epoch += simtime.Epoch(rng.Intn(3))
			for _, s := range ss {
				s.Advance(epoch)
			}
		} else {
			idx := rng.Intn(hosts)
			for _, s := range ss {
				s.Touch(idx)
			}
		}
	}
	return epoch
}

// TestPropertyAdaptiveMatchesDense is the tentpole's exactness gate: under
// random touch/advance/seal/recycle schedules, the adaptive backend answers
// every pull byte-identically to the dense oracle — same bits, same level,
// same coverage — and both report Exact.
func TestPropertyAdaptiveMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const hosts = 96
		cfgD := Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: hosts, Backend: BackendDense}
		cfgA := cfgD
		cfgA.Backend = BackendAdaptive
		d, err1 := New(cfgD, nil)
		a, err2 := New(cfgA, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		epoch := driveLockstep(rng, 250, hosts, d, a)
		for q := 0; q < 25; q++ {
			lo := simtime.Epoch(rng.Intn(int(epoch) + 1))
			r := simtime.EpochRange{Lo: lo, Hi: lo + simtime.Epoch(rng.Intn(6))}
			bd, rd := d.Query(r)
			ba, ra := a.Query(r)
			if !bd.Equal(ba) {
				return false
			}
			if rd.Level != ra.Level || rd.Covered != ra.Covered || rd.Slots != ra.Slots {
				return false
			}
			if !rd.Exact || !ra.Exact {
				return false
			}
			for h := 1; h <= 3; h++ {
				sd, sa := d.SlotsAt(h, r), a.SlotsAt(h, r)
				if len(sd) != len(sa) {
					return false
				}
				for i := range sd {
					if sd[i].Epochs != sa[i].Epochs || !sd[i].Bits.Equal(sa[i].Bits) || sa[i].Approx {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBloomSupersetAtEveryPull checks the sketch backend's one-sided
// error contract: at every pull, the bloom candidate set contains every host
// the dense oracle reports (zero false negatives), and any pull whose oracle
// answer is non-empty is flagged inexact.
func TestPropertyBloomSupersetAtEveryPull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const hosts = 256
		cfgD := Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: hosts, Backend: BackendDense}
		cfgB := cfgD
		cfgB.Backend = BackendBloom
		// Deliberately undersized filter so false positives actually occur.
		cfgB.BloomBits = 128
		cfgB.BloomHashes = 2
		d, err1 := New(cfgD, nil)
		b, err2 := New(cfgB, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		epoch := driveLockstep(rng, 250, hosts, d, b)
		for q := 0; q < 25; q++ {
			lo := simtime.Epoch(rng.Intn(int(epoch) + 1))
			r := simtime.EpochRange{Lo: lo, Hi: lo + simtime.Epoch(rng.Intn(6))}
			bd, rd := d.Query(r)
			bb, rb := b.Query(r)
			// Identical geometry → identical level/coverage decisions.
			if rd.Level != rb.Level || rd.Covered != rb.Covered {
				return false
			}
			miss := false
			bd.ForEach(func(i int) bool {
				if !bb.Get(i) {
					miss = true
					return false
				}
				return true
			})
			if miss {
				return false // false negative: contract broken
			}
			if bd.Any() && rb.Exact {
				return false // sketch-backed result must be flagged
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBloomFalsePositivesAreVisible pins the other side of the contract with
// a fixed seed: an undersized filter does produce false positives, and they
// surface as Approx/!Exact rather than silently.
func TestBloomFalsePositivesAreVisible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const hosts = 4096
	cfgD := Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: hosts, Backend: BackendDense}
	cfgB := cfgD
	cfgB.Backend = BackendBloom
	cfgB.BloomBits = 128
	cfgB.BloomHashes = 2
	d := mustNew(t, cfgD, nil)
	b := mustNew(t, cfgB, nil)
	d.Advance(0)
	b.Advance(0)
	for i := 0; i < 100; i++ {
		idx := rng.Intn(hosts)
		d.Touch(idx)
		b.Touch(idx)
	}
	r := simtime.EpochRange{Lo: 0, Hi: 0}
	bd, _ := d.Query(r)
	bb, rb := b.Query(r)
	if rb.Exact {
		t.Fatalf("bloom query claims exactness")
	}
	fp := 0
	bb.ForEach(func(i int) bool {
		if !bd.Get(i) {
			fp++
		}
		return true
	})
	if fp == 0 {
		t.Fatalf("128-bit filter with 100 members produced no false positives — test is vacuous")
	}
	slots := b.SlotsAt(1, r)
	if len(slots) == 0 || !slots[0].Approx {
		t.Fatalf("sketch-backed slot not marked Approx")
	}
}

// TestSnapshotCrossBackendRestore: an exact snapshot restores into any
// backend (the V2 wire carries kind-tagged payloads, and exact payloads
// re-insert member-by-member), answering pulls identically afterward.
func TestSnapshotCrossBackendRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const hosts = 200
	mk := func(be Backend) *Structure {
		cfg := Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: hosts, Backend: be}
		return mustNew(t, cfg, nil)
	}
	for _, src := range []Backend{BackendDense, BackendAdaptive} {
		for _, dst := range []Backend{BackendDense, BackendAdaptive} {
			s := mk(src)
			s.Advance(0)
			epoch := simtime.Epoch(0)
			for op := 0; op < 300; op++ {
				if rng.Intn(4) == 0 {
					epoch += simtime.Epoch(rng.Intn(2))
					s.Advance(epoch)
				} else {
					s.Touch(rng.Intn(hosts))
				}
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			twin := mk(dst)
			if err := twin.Restore(snap); err != nil {
				t.Fatalf("%s snapshot into %s: %v", src, dst, err)
			}
			r := simtime.EpochRange{Lo: 0, Hi: epoch}
			b1, r1 := s.Query(r)
			b2, r2 := twin.Query(r)
			if !b1.Equal(b2) || r1 != r2 {
				t.Fatalf("%s→%s restore diverged: %+v vs %+v", src, dst, r1, r2)
			}
			if twin.Touches() != s.Touches() || twin.CurrentEpoch() != s.CurrentEpoch() {
				t.Fatalf("%s→%s counters diverged", src, dst)
			}
		}
	}
	// A bloom snapshot restores only into a bloom structure with identical
	// filter parameters: the member list cannot be recovered from a sketch.
	b := mk(BackendBloom)
	b.Advance(0)
	for i := 0; i < 50; i++ {
		b.Touch(rng.Intn(hosts))
	}
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	twin := mk(BackendBloom)
	if err := twin.Restore(snap); err != nil {
		t.Fatalf("bloom→bloom restore: %v", err)
	}
	q1, _ := b.Query(simtime.EpochRange{Lo: 0, Hi: 0})
	q2, _ := twin.Query(simtime.EpochRange{Lo: 0, Hi: 0})
	if !q1.Equal(q2) {
		t.Fatalf("bloom→bloom candidates diverged")
	}
	if err := mk(BackendAdaptive).Restore(snap); err == nil {
		t.Fatalf("bloom snapshot restored into an exact backend")
	}
	mismatched := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: hosts,
		Backend: BackendBloom, BloomBits: 512, BloomHashes: 3}, nil)
	if err := mismatched.Restore(snap); err == nil {
		t.Fatalf("bloom snapshot restored into mismatched filter geometry")
	}
}

// legacySlotSnap/legacyStructSnap replicate the PR 5 snapshot wire form
// (pre-Version, pre-Kind): every payload a dense bitmap. Gob matches struct
// fields by name, so encoding these decodes through the V2 structSnap with
// Version=0 and Kind=0 — which is exactly the dense interpretation.
type legacySlotSnap struct {
	Epochs simtime.EpochRange
	Bits   []byte
	Sealed bool
	Used   bool
}

type legacyStructSnap struct {
	Alpha    simtime.Time
	K        int
	NumHosts int

	Epoch       simtime.Epoch
	Started     bool
	Touches     uint64
	Pushes      uint64
	PushedBytes uint64
	Cur         []int
	Levels      [][]legacySlotSnap
}

// TestLegacyDenseSnapshotRestoresIntoEveryBackend synthesizes a V1 (all-
// dense, untagged) snapshot stream and restores it into each backend.
func TestLegacyDenseSnapshotRestoresIntoEveryBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const hosts = 300
	src := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: hosts, Backend: BackendDense}, nil)
	src.Advance(0)
	epoch := simtime.Epoch(0)
	for op := 0; op < 250; op++ {
		if rng.Intn(4) == 0 {
			epoch += simtime.Epoch(rng.Intn(2))
			src.Advance(epoch)
		} else {
			src.Touch(rng.Intn(hosts))
		}
	}
	// Hand-build the legacy stream the way the PR 5 encoder did: every slot
	// marshaled as a full dense bitmap, no Version, no Kind.
	legacy := legacyStructSnap{
		Alpha:       src.cfg.Alpha,
		K:           src.cfg.K,
		NumHosts:    src.cfg.NumHosts,
		Epoch:       src.epoch,
		Started:     src.started,
		Touches:     src.touches,
		Pushes:      src.pushes,
		PushedBytes: src.pushedBytes,
		Cur:         append([]int(nil), src.cur...),
	}
	legacy.Levels = make([][]legacySlotSnap, len(src.levels))
	for h, ring := range src.levels {
		legacy.Levels[h] = make([]legacySlotSnap, len(ring))
		for i, slot := range ring {
			bits, err := src.materialize(slot).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			legacy.Levels[h][i] = legacySlotSnap{Epochs: slot.epochs, Bits: bits, Sealed: slot.sealed, Used: slot.used}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}

	r := simtime.EpochRange{Lo: 0, Hi: epoch}
	want, wantRes := src.Query(r)
	for _, be := range []Backend{BackendDense, BackendAdaptive, BackendBloom} {
		twin := mustNew(t, Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: hosts, Backend: be}, nil)
		if err := twin.Restore(buf.Bytes()); err != nil {
			t.Fatalf("legacy snapshot into %s: %v", be, err)
		}
		got, gotRes := twin.Query(r)
		if be == BackendBloom {
			// Sketch restore re-inserts members: superset, never a miss.
			miss := false
			want.ForEach(func(i int) bool {
				if !got.Get(i) {
					miss = true
					return false
				}
				return true
			})
			if miss {
				t.Fatalf("legacy→bloom restore dropped a host")
			}
			continue
		}
		if !got.Equal(want) || gotRes != wantRes {
			t.Fatalf("legacy→%s restore diverged", be)
		}
	}
}

func BenchmarkTouchK3(b *testing.B) {
	s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: 100000}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(i % 100000)
	}
}

func BenchmarkTouchK5(b *testing.B) {
	s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 5, NumHosts: 100000}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(i % 100000)
	}
}

func BenchmarkAdvanceEpoch(b *testing.B) {
	s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: 100000}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance(simtime.Epoch(i + 1))
	}
}
