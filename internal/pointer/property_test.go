package pointer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"switchpointer/internal/simtime"
)

// TestPropertyLevelKSupersetsLevel1 checks the defining containment invariant
// under random touch/advance interleavings: for any epoch window still
// retained at level 1, the covering slot at any higher level contains (as a
// superset) the union of the level-1 slots.
func TestPropertyLevelKSupersetsLevel1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: 64}, nil)
		if err != nil {
			return false
		}
		s.Advance(0)
		epoch := simtime.Epoch(0)
		for op := 0; op < 200; op++ {
			if rng.Intn(3) == 0 {
				epoch += simtime.Epoch(rng.Intn(3))
				s.Advance(epoch)
			} else {
				s.Touch(rng.Intn(64))
			}
		}
		// For each live level-1 slot, the level-2 slot covering its window
		// must be a superset.
		for _, l1 := range s.SlotsAt(1, simtime.EpochRange{Lo: 0, Hi: epoch}) {
			l2s := s.SlotsAt(2, l1.Epochs)
			if len(l2s) == 0 {
				continue // level-2 slot may have recycled in long runs
			}
			union := l2s[0].Bits.Clone()
			for _, o := range l2s[1:] {
				union.UnionWith(o.Bits)
			}
			ok := true
			l1.Bits.ForEach(func(i int) bool {
				if !union.Get(i) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQueryNeverMissesRetainedTouches replays a random schedule of
// touches against a brute-force oracle: whenever Query reports Covered for a
// range, it must include every host touched in that range.
func TestPropertyQueryNeverMissesRetainedTouches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: 32}, nil)
		if err != nil {
			return false
		}
		s.Advance(0)
		// oracle[e] = set of hosts touched during epoch e.
		oracle := map[simtime.Epoch]map[int]bool{}
		epoch := simtime.Epoch(0)
		for op := 0; op < 150; op++ {
			if rng.Intn(4) == 0 {
				epoch++
				s.Advance(epoch)
			} else {
				idx := rng.Intn(32)
				s.Touch(idx)
				if oracle[epoch] == nil {
					oracle[epoch] = map[int]bool{}
				}
				oracle[epoch][idx] = true
			}
		}
		// Random queries.
		for q := 0; q < 20; q++ {
			lo := simtime.Epoch(rng.Intn(int(epoch) + 1))
			hi := lo + simtime.Epoch(rng.Intn(5))
			bits, res := s.Query(simtime.EpochRange{Lo: lo, Hi: hi})
			if !res.Covered {
				continue
			}
			for e := lo; e <= hi && e <= epoch; e++ {
				for idx := range oracle[e] {
					if !bits.Get(idx) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoFalseHostsAtLevel1 checks the converse at the finest level:
// a level-1-covered query returns no host that was not touched in the range.
func TestPropertyNoFalseHostsAtLevel1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 2, NumHosts: 32}, nil)
		if err != nil {
			return false
		}
		s.Advance(0)
		oracle := map[simtime.Epoch]map[int]bool{}
		epoch := simtime.Epoch(0)
		for op := 0; op < 100; op++ {
			if rng.Intn(4) == 0 {
				epoch++
				s.Advance(epoch)
			} else {
				idx := rng.Intn(32)
				s.Touch(idx)
				if oracle[epoch] == nil {
					oracle[epoch] = map[int]bool{}
				}
				oracle[epoch][idx] = true
			}
		}
		for q := 0; q < 20; q++ {
			lo := simtime.Epoch(rng.Intn(int(epoch) + 1))
			hi := lo + simtime.Epoch(rng.Intn(3))
			bits, res := s.Query(simtime.EpochRange{Lo: lo, Hi: hi})
			if res.Level != 1 || !res.Covered {
				continue
			}
			okAll := true
			bits.ForEach(func(idx int) bool {
				found := false
				for e := lo; e <= hi; e++ {
					if oracle[e][idx] {
						found = true
						break
					}
				}
				if !found {
					okAll = false
					return false
				}
				return true
			})
			if !okAll {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTouchK3(b *testing.B) {
	s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: 100000}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(i % 100000)
	}
}

func BenchmarkTouchK5(b *testing.B) {
	s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 5, NumHosts: 100000}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(i % 100000)
	}
}

func BenchmarkAdvanceEpoch(b *testing.B) {
	s, err := New(Config{Alpha: 10 * simtime.Millisecond, K: 3, NumHosts: 100000}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance(simtime.Epoch(i + 1))
	}
}
