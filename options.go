package switchpointer

// Option configures a testbed assembled by New. Options compose left to
// right over the zero Options value, whose unset fields select the paper's
// defaults (α=10 ms, k=3, ε=α, FIFO queues, calibrated cost model).
type Option func(*Options)

// WithEpoch sets the epoch size α.
func WithEpoch(alpha Time) Option {
	return func(o *Options) { o.Alpha = alpha }
}

// WithLevels sets k, the number of pointer hierarchy levels.
func WithLevels(k int) Option {
	return func(o *Options) { o.K = k }
}

// WithDriftBound sets ε, the network-wide clock-drift bound.
func WithDriftBound(eps Time) Option {
	return func(o *Options) { o.Eps = eps }
}

// WithMaxHopDelay sets Δ, the maximum one-hop delay assumed by epoch
// extrapolation.
func WithMaxHopDelay(delta Time) Option {
	return func(o *Options) { o.Delta = delta }
}

// WithQueueDiscipline selects the switch output-queue discipline
// (QueueFIFO or QueuePriority).
func WithQueueDiscipline(q QueueKind) Option {
	return func(o *Options) { o.Queue = q }
}

// WithHeaderMode selects commodity double-tagging or INT telemetry
// embedding.
func WithHeaderMode(m HeaderMode) Option {
	return func(o *Options) { o.Mode = m }
}

// WithSwitchBuffer sizes each switch output queue in bytes.
func WithSwitchBuffer(bytes int) Option {
	return func(o *Options) { o.SwitchBufBytes = bytes }
}

// WithCostModel sets the analyzer's RPC cost model.
func WithCostModel(c CostModel) Option {
	return func(o *Options) { o.Cost = c }
}

// WithHostConfig tunes the host agents' trigger engines.
func WithHostConfig(c HostConfig) Option {
	return func(o *Options) { o.HostCfg = c }
}

// WithRuleUpdateInterval models the commodity epoch-rule floor (§4.1.3).
func WithRuleUpdateInterval(d Time) Option {
	return func(o *Options) { o.RuleUpdateInterval = d }
}

// WithPointerBackend selects the per-slot pointer-set implementation on
// every switch: PointerAdaptive (default), PointerDense, or PointerBloom.
func WithPointerBackend(be PointerBackend) Option {
	return func(o *Options) { o.PointerBackend = be }
}

// WithPointerBloom tunes the bloom backend's per-slot filter (bits and hash
// count; zero selects 16384/4). Only valid with WithPointerBackend(
// PointerBloom) — other backends reject the knobs as inert.
func WithPointerBloom(bits, hashes int) Option {
	return func(o *Options) {
		o.PointerBloomBits = bits
		o.PointerBloomHashes = hashes
	}
}

// WithClockSeed drives deterministic switch clock-offset assignment.
func WithClockSeed(seed int64) Option {
	return func(o *Options) { o.ClockSeed = seed }
}

// WithHeapEventQueue schedules the simulation on the event engine's 4-ary
// heap instead of the default calendar queue. Results are byte-identical
// either way; the option exists so `make bench` can report the scheduler
// ablation.
func WithHeapEventQueue() Option {
	return func(o *Options) { o.HeapEventQueue = true }
}
