// Package switchpointer is a from-scratch Go reproduction of SwitchPointer
// (Tammana, Agarwal, Lee — "Distributed Network Monitoring and Debugging
// with SwitchPointer", NSDI 2018).
//
// SwitchPointer integrates end-host telemetry collection (PathDump-style
// agents) with in-network visibility by using switch memory as a *directory
// service*: each switch maintains, per epoch, a hierarchical set of pointers
// (bitmaps over a minimal perfect hash of end-host addresses) to the hosts
// it forwarded packets to. When a host triggers a spurious event, the
// analyzer uses those pointers to contact exactly the hosts holding relevant
// telemetry, instead of everyone.
//
// This package is the public facade over the full system:
//
//   - a deterministic discrete-event datacenter simulator (switches with
//     strict-priority/FIFO queues, links, hosts, TCP/UDP transports);
//   - fat-tree / leaf-spine / chain / dumbbell topologies with
//     CherryPick-style key-link path reconstruction;
//   - the switch datapath: one MPH lookup + k-level pointer update +
//     telemetry tag push per packet, with epoch rotation and top-level
//     pushes to the control plane;
//   - host agents decoding telemetry into flow records, millisecond
//     triggers, and distributed query executors;
//   - the analyzer with the paper's diagnosis procedures: priority/
//     microburst contention, too-many-red-lights, traffic cascades, load
//     imbalance, and top-k queries with a PathDump baseline.
//
// Quick start:
//
//	tb, err := switchpointer.NewTestbed(switchpointer.Dumbbell(4, 4), switchpointer.Options{})
//	if err != nil { ... }
//	// inject traffic with switchpointer.StartTCP / StartUDP ...
//	tb.Run(110 * switchpointer.Millisecond)
//	alert, _ := tb.AlertFor(victimFlow)
//	diag := tb.Analyzer.DiagnoseContention(alert)
//	fmt.Println(diag.Kind, diag.Conclusion)
//
// The runnable examples under examples/ and the experiment harness under
// cmd/spbench exercise every part of this API.
package switchpointer

import (
	"switchpointer/internal/analyzer"
	"switchpointer/internal/header"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
	"switchpointer/internal/transport"
)

// Re-exported core types. The facade keeps one import path for downstream
// users while the implementation stays in focused internal packages.
type (
	// Time is virtual time in nanoseconds.
	Time = simtime.Time
	// Epoch identifies one switch epoch.
	Epoch = simtime.Epoch
	// EpochRange is a closed epoch interval.
	EpochRange = simtime.EpochRange

	// IPv4 is an end-host address.
	IPv4 = netsim.IPv4
	// FlowKey is the 5-tuple flow identity.
	FlowKey = netsim.FlowKey
	// Packet is a simulated packet.
	Packet = netsim.Packet
	// Network is the simulated fabric.
	Network = netsim.Network
	// Host is a simulated end host.
	Host = netsim.Host
	// Switch is a simulated switch.
	Switch = netsim.Switch

	// Topology is the structural view used for routing/reconstruction.
	Topology = topo.Topology

	// Options configures a testbed (epoch size α, levels k, drift bound ε,
	// queue discipline, RPC cost model, ...).
	Options = scenario.Options
	// Testbed is a fully wired SwitchPointer deployment.
	Testbed = scenario.Testbed

	// Alert is a host-raised trigger event.
	Alert = hostagent.Alert
	// HostAgent is the end-host telemetry component.
	HostAgent = hostagent.Agent

	// Analyzer executes diagnoses.
	Analyzer = analyzer.Analyzer
	// Diagnosis is a contention/red-lights/cascade outcome.
	Diagnosis = analyzer.Diagnosis
	// Culprit is one contending flow in a diagnosis.
	Culprit = analyzer.Culprit
	// ImbalanceReport is the load-imbalance outcome.
	ImbalanceReport = analyzer.ImbalanceReport
	// TopKReport is the distributed top-k outcome.
	TopKReport = analyzer.TopKReport

	// TCPConfig and UDPConfig describe workload flows.
	TCPConfig = transport.TCPConfig
	UDPConfig = transport.UDPConfig
	// Meter samples throughput/gaps.
	Meter = transport.Meter

	// CostModel is the analyzer RPC cost model.
	CostModel = rpc.CostModel

	// HeaderMode selects commodity double-tagging or INT.
	HeaderMode = header.Mode
)

// Time units.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)

// Header modes.
const (
	ModeCommodity = header.ModeCommodity
	ModeINT       = header.ModeINT
)

// Queue disciplines.
const (
	QueueFIFO     = netsim.QueueFIFO
	QueuePriority = netsim.QueuePriority
)

// Diagnosis kinds.
const (
	KindPriorityContention = analyzer.KindPriorityContention
	KindMicroburst         = analyzer.KindMicroburst
	KindRedLights          = analyzer.KindRedLights
	KindCascade            = analyzer.KindCascade
	KindLoadImbalance      = analyzer.KindLoadImbalance
	KindInconclusive       = analyzer.KindInconclusive
)

// Top-k query modes.
const (
	ModeSwitchPointer = analyzer.ModeSwitchPointer
	ModePathDump      = analyzer.ModePathDump
)

// IP builds an IPv4 address from octets.
func IP(a, b, c, d byte) IPv4 { return netsim.IP(a, b, c, d) }

// DefaultCostModel returns RPC costs calibrated to the paper's measurements.
func DefaultCostModel() CostModel { return rpc.DefaultCostModel() }

// BuildFunc constructs a topology on a fresh network (use the shipped
// builders below or provide your own).
type BuildFunc = scenario.BuildFunc

// Dumbbell returns a builder for two switches with hosts on both sides and
// one shared fabric link — the "too much traffic" testbed.
func Dumbbell(nLeft, nRight int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.Dumbbell(net, nLeft, nRight, cfg)
	}
}

// Chain returns a builder for a line of switches with hostsPer[i] hosts each
// — the red-lights / cascades testbed.
func Chain(hostsPer ...int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.Chain(net, hostsPer, cfg)
	}
}

// LeafSpine returns a builder for a 2-tier clos.
func LeafSpine(nLeaf, nSpine, hostsPerLeaf int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.LeafSpine(net, nLeaf, nSpine, hostsPerLeaf, cfg)
	}
}

// FatTree returns a builder for a k-ary fat-tree (k even).
func FatTree(k int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.FatTree(net, k, cfg)
	}
}

// ParallelLinks returns a builder for a dumbbell with parallel fabric links
// — the load-imbalance testbed.
func ParallelLinks(nLeft, nRight, nLinks int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.ParallelLinks(net, nLeft, nRight, nLinks, cfg)
	}
}

// NewTestbed assembles a complete SwitchPointer deployment on the given
// topology: per-switch datapaths and agents, per-host agents with triggers
// armed, the MPH directory distributed, and an analyzer.
func NewTestbed(build BuildFunc, opt Options) (*Testbed, error) {
	return scenario.NewTestbed(build, opt)
}

// StartTCP starts a Reno-style TCP flow between two hosts.
func StartTCP(net *Network, src, dst *Host, cfg TCPConfig) (*transport.TCPSender, *transport.TCPReceiver) {
	return transport.StartTCP(net, src, dst, cfg)
}

// StartUDP starts a constant-rate UDP flow from a host.
func StartUDP(net *Network, src *Host, cfg UDPConfig) *transport.UDPSource {
	return transport.StartUDP(net, src, cfg)
}

// NewMeter creates a throughput/gap meter with the given bucket width.
func NewMeter(interval Time) *Meter { return transport.NewMeter(interval) }
