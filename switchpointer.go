// Package switchpointer is a from-scratch Go reproduction of SwitchPointer
// (Tammana, Agarwal, Lee — "Distributed Network Monitoring and Debugging
// with SwitchPointer", NSDI 2018).
//
// SwitchPointer integrates end-host telemetry collection (PathDump-style
// agents) with in-network visibility by using switch memory as a *directory
// service*: each switch maintains, per epoch, a hierarchical set of pointers
// (bitmaps over a minimal perfect hash of end-host addresses) to the hosts
// it forwarded packets to. When a host triggers a spurious event, the
// analyzer uses those pointers to contact exactly the hosts holding relevant
// telemetry, instead of everyone.
//
// # The monitoring service API
//
// The facade is organized around three pillars:
//
//   - Unified queries. Every diagnosis procedure is a Query value —
//     ContentionQuery, RedLightsQuery, CascadeQuery, ImbalanceQuery,
//     TopKQuery — executed through one dispatch point,
//     Analyzer.Run(ctx, query), which returns the unified Report envelope
//     (outcome kind, culprits, payloads, consulted-host set, virtual-time
//     cost breakdown). Queries honour context cancellation and deadlines at
//     every phase boundary; a cancelled query returns the partial Report
//     with the cost actually incurred, plus ctx.Err().
//
//   - Streaming alerts. Testbed.Subscribe(AlertFilter) returns a buffered
//     channel delivering every matching host-raised alert; multiple
//     subscribers each get their own copy, and Testbed.Close tears all
//     subscriptions down. The poll-style AlertFor remains as a shim over
//     the alert log.
//
//   - Pluggable directory. The analyzer reaches switch pointer state only
//     through the analyzer.Directory interface (pointer lookup, epoch-range
//     scan, MPH distribution). The in-memory implementation is the default;
//     the seam exists for sharded/remote backends.
//
// # Quick start
//
//	tb, err := switchpointer.New(switchpointer.Dumbbell(4, 4),
//		switchpointer.WithQueueDiscipline(switchpointer.QueuePriority))
//	if err != nil { ... }
//	alerts := tb.Subscribe(switchpointer.AlertFilter{}) // all alerts
//	// inject traffic with switchpointer.StartTCP / StartUDP ...
//	tb.Run(110 * switchpointer.Millisecond)
//	alert := <-alerts
//	rep, err := tb.Analyzer.Run(ctx, switchpointer.ContentionQuery{Alert: alert})
//	fmt.Println(rep.Kind, rep.Conclusion)
//	tb.Close()
//
// Construction takes functional options (WithEpoch, WithLevels,
// WithQueueDiscipline, WithCostModel, ...); the plain Options struct and
// NewTestbed keep working for callers that prefer it.
//
// Underneath the facade:
//
//   - a deterministic discrete-event datacenter simulator (switches with
//     strict-priority/FIFO queues, links, hosts, TCP/UDP transports);
//   - fat-tree / leaf-spine / chain / dumbbell topologies with
//     CherryPick-style key-link path reconstruction;
//   - the switch datapath: one MPH lookup + k-level pointer update +
//     telemetry tag push per packet, with epoch rotation and top-level
//     pushes to the control plane;
//   - host agents decoding telemetry into flow records, millisecond
//     triggers, and distributed query executors;
//   - the analyzer with the paper's diagnosis procedures: priority/
//     microburst contention, too-many-red-lights, traffic cascades, load
//     imbalance, and top-k queries with a PathDump baseline.
//
// The runnable examples under examples/ and the experiment harness under
// cmd/spbench exercise every part of this API.
package switchpointer

import (
	"switchpointer/internal/analyzer"
	"switchpointer/internal/header"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/pointer"
	"switchpointer/internal/rpc"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
	"switchpointer/internal/transport"
)

// Re-exported core types. The facade keeps one import path for downstream
// users while the implementation stays in focused internal packages.
type (
	// Time is virtual time in nanoseconds.
	Time = simtime.Time
	// Epoch identifies one switch epoch.
	Epoch = simtime.Epoch
	// EpochRange is a closed epoch interval.
	EpochRange = simtime.EpochRange

	// IPv4 is an end-host address.
	IPv4 = netsim.IPv4
	// FlowKey is the 5-tuple flow identity.
	FlowKey = netsim.FlowKey
	// Packet is a simulated packet.
	Packet = netsim.Packet
	// Network is the simulated fabric.
	Network = netsim.Network
	// Host is a simulated end host.
	Host = netsim.Host
	// Switch is a simulated switch.
	Switch = netsim.Switch
	// QueueKind selects a switch queue discipline.
	QueueKind = netsim.QueueKind

	// PointerBackend selects the per-slot pointer-set implementation.
	PointerBackend = pointer.Backend

	// Topology is the structural view used for routing/reconstruction.
	Topology = topo.Topology

	// Options configures a testbed (epoch size α, levels k, drift bound ε,
	// queue discipline, RPC cost model, ...). Prefer the functional options
	// accepted by New; Options remains for struct-literal construction.
	Options = scenario.Options
	// Testbed is a fully wired SwitchPointer deployment.
	Testbed = scenario.Testbed

	// Alert is a host-raised trigger event.
	Alert = hostagent.Alert
	// AlertFilter selects which alerts a Testbed.Subscribe subscription
	// receives; the zero filter matches everything.
	AlertFilter = hostagent.AlertFilter
	// HostAgent is the end-host telemetry component.
	HostAgent = hostagent.Agent
	// HostConfig tunes the host agents' trigger engines.
	HostConfig = hostagent.Config

	// Analyzer executes queries (Analyzer.Run).
	Analyzer = analyzer.Analyzer
	// Query is one self-describing analyzer request.
	Query = analyzer.Query
	// Report is the unified answer envelope every query kind returns.
	Report = analyzer.Report
	// ContentionQuery debugs a throughput-drop or timeout alert (§5.1).
	ContentionQuery = analyzer.ContentionQuery
	// RedLightsQuery debugs accumulated per-switch degradation (§5.2).
	RedLightsQuery = analyzer.RedLightsQuery
	// CascadeQuery chases causality backwards from an alert (§5.3).
	CascadeQuery = analyzer.CascadeQuery
	// ImbalanceQuery investigates uneven egress utilization (§5.4).
	ImbalanceQuery = analyzer.ImbalanceQuery
	// TopKQuery runs the distributed top-k flows query (§6.2).
	TopKQuery = analyzer.TopKQuery
	// Directory is the pluggable pointer-directory backend seam.
	Directory = analyzer.Directory
	// Culprit is one contending flow in a report.
	Culprit = analyzer.Culprit

	// Diagnosis, ImbalanceReport and TopKReport are the pre-Query result
	// types, all subsumed by Report.
	//
	// Deprecated: use Report.
	Diagnosis       = analyzer.Report
	ImbalanceReport = analyzer.Report
	TopKReport      = analyzer.Report

	// TCPConfig and UDPConfig describe workload flows.
	TCPConfig = transport.TCPConfig
	UDPConfig = transport.UDPConfig
	// Meter samples throughput/gaps.
	Meter = transport.Meter

	// CostModel is the analyzer RPC cost model.
	CostModel = rpc.CostModel

	// HeaderMode selects commodity double-tagging or INT.
	HeaderMode = header.Mode
)

// Time units.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)

// Header modes.
const (
	ModeCommodity = header.ModeCommodity
	ModeINT       = header.ModeINT
)

// Queue disciplines.
const (
	QueueFIFO     = netsim.QueueFIFO
	QueuePriority = netsim.QueuePriority
)

// Pointer-slot backends (see WithPointerBackend).
const (
	// PointerAdaptive (the default) stores slots sparsely and promotes to a
	// dense bitmap past a density threshold; exact, occupancy-proportional.
	PointerAdaptive = pointer.BackendAdaptive
	// PointerDense is the paper's fixed dense-bitmap layout: exact, with
	// memory independent of occupancy (the accuracy/memory oracle).
	PointerDense = pointer.BackendDense
	// PointerBloom stores slots as fixed-size bloom filters: constant
	// memory, one-sided error (candidate supersets, never a missed host).
	PointerBloom = pointer.BackendBloom
)

// Report outcome kinds.
const (
	KindPriorityContention = analyzer.KindPriorityContention
	KindMicroburst         = analyzer.KindMicroburst
	KindRedLights          = analyzer.KindRedLights
	KindCascade            = analyzer.KindCascade
	KindLoadImbalance      = analyzer.KindLoadImbalance
	KindTopK               = analyzer.KindTopK
	KindInconclusive       = analyzer.KindInconclusive
)

// Alert kinds.
const (
	AlertThroughputDrop = hostagent.AlertThroughputDrop
	AlertTimeout        = hostagent.AlertTimeout
)

// Top-k query modes.
const (
	ModeSwitchPointer = analyzer.ModeSwitchPointer
	ModePathDump      = analyzer.ModePathDump
)

// IP builds an IPv4 address from octets.
func IP(a, b, c, d byte) IPv4 { return netsim.IP(a, b, c, d) }

// DefaultCostModel returns RPC costs calibrated to the paper's measurements.
func DefaultCostModel() CostModel { return rpc.DefaultCostModel() }

// BuildFunc constructs a topology on a fresh network (use the shipped
// builders below or provide your own).
type BuildFunc = scenario.BuildFunc

// Dumbbell returns a builder for two switches with hosts on both sides and
// one shared fabric link — the "too much traffic" testbed.
func Dumbbell(nLeft, nRight int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.Dumbbell(net, nLeft, nRight, cfg)
	}
}

// Chain returns a builder for a line of switches with hostsPer[i] hosts each
// — the red-lights / cascades testbed.
func Chain(hostsPer ...int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.Chain(net, hostsPer, cfg)
	}
}

// LeafSpine returns a builder for a 2-tier clos.
func LeafSpine(nLeaf, nSpine, hostsPerLeaf int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.LeafSpine(net, nLeaf, nSpine, hostsPerLeaf, cfg)
	}
}

// FatTree returns a builder for a k-ary fat-tree (k even).
func FatTree(k int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.FatTree(net, k, cfg)
	}
}

// ParallelLinks returns a builder for a dumbbell with parallel fabric links
// — the load-imbalance testbed.
func ParallelLinks(nLeft, nRight, nLinks int) BuildFunc {
	return func(net *netsim.Network, cfg topo.Config) *topo.Topology {
		return topo.ParallelLinks(net, nLeft, nRight, nLinks, cfg)
	}
}

// New assembles a complete SwitchPointer deployment on the given topology —
// per-switch datapaths and agents, per-host agents with triggers armed, the
// MPH directory distributed, and an analyzer — configured by functional
// options. With no options every parameter takes the paper's default.
func New(build BuildFunc, opts ...Option) (*Testbed, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return scenario.NewTestbed(build, o)
}

// NewTestbed assembles a deployment from an explicit Options struct. New is
// the functional-options equivalent.
func NewTestbed(build BuildFunc, opt Options) (*Testbed, error) {
	return scenario.NewTestbed(build, opt)
}

// StartTCP starts a Reno-style TCP flow between two hosts.
func StartTCP(net *Network, src, dst *Host, cfg TCPConfig) (*transport.TCPSender, *transport.TCPReceiver) {
	return transport.StartTCP(net, src, dst, cfg)
}

// StartUDP starts a constant-rate UDP flow from a host.
func StartUDP(net *Network, src *Host, cfg UDPConfig) *transport.UDPSource {
	return transport.StartUDP(net, src, cfg)
}

// NewMeter creates a throughput/gap meter with the given bucket width.
func NewMeter(interval Time) *Meter { return transport.NewMeter(interval) }
