package switchpointer

import (
	"context"
	"testing"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// TestIntegrationFatTreeContention runs the full system on a k=4 fat-tree
// with background traffic and diagnoses a contention event on an inter-pod
// path — exercising CherryPick reconstruction, epoch extrapolation across 5
// switches, pointer pulls at every layer, and pruning, all in one run.
func TestIntegrationFatTreeContention(t *testing.T) {
	tb, err := NewTestbed(FatTree(4), Options{Queue: QueuePriority})
	if err != nil {
		t.Fatal(err)
	}
	hosts := tb.Topo.Hosts()
	src, dst := hosts[0], hosts[12] // pod 0 → pod 3 (inter-pod, 5 switches)

	victim := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	StartTCP(tb.Net, src, dst, TCPConfig{Flow: victim, Priority: 1, Duration: 100 * Millisecond})

	// Background chatter across the fabric (different pods, low rate).
	for i := 0; i < 6; i++ {
		s := hosts[(i*3+1)%len(hosts)]
		d := hosts[(i*5+7)%len(hosts)]
		if s == d {
			continue
		}
		StartUDP(tb.Net, s, UDPConfig{
			Flow:    FlowKey{Src: s.IP(), Dst: d.IP(), SrcPort: uint16(6000 + i), DstPort: 53, Proto: 17},
			RateBps: 20_000_000, Start: 0, Duration: 100 * Millisecond,
		})
	}

	// The aggressor: high-priority burst sharing the victim's source edge
	// uplink. Host h0-0-1 shares src's ToR; send to the same destination
	// pod so the egress overlaps.
	agg := hosts[1]
	aggDst := hosts[13]
	aggFlow := FlowKey{Src: agg.IP(), Dst: aggDst.IP(), SrcPort: 7777, DstPort: 7, Proto: 17}
	StartUDP(tb.Net, agg, UDPConfig{
		Flow: aggFlow, Priority: 7, RateBps: 1_000_000_000,
		Start: 50 * Millisecond, Duration: 5 * Millisecond,
	})

	tb.Run(120 * Millisecond)

	alert, ok := tb.AlertFor(victim)
	if !ok {
		t.Skipf("ECMP placed victim and aggressor on disjoint uplinks; no contention this seed")
	}
	// The alert's tuples must cover the whole 5-switch trajectory.
	if len(alert.Tuples) != 5 {
		t.Fatalf("alert tuples = %d, want 5 (inter-pod path)", len(alert.Tuples))
	}
	d := tb.Analyzer.DiagnoseContention(alert)
	if d.Kind == analyzer.KindInconclusive {
		t.Fatalf("diagnosis inconclusive: %s", d.Conclusion)
	}
	found := false
	for _, c := range d.Culprits {
		if c.Flow == aggFlow {
			found = true
		}
	}
	if !found {
		t.Fatalf("aggressor not identified; culprits=%v", d.Culprits)
	}
}

// TestIntegrationOfflineDiagnosis exercises the push model: diagnose an
// event long after the fine-grained pointers recycled, using the top-level
// history pushed to the switch control plane (§4.1.1's offline path).
func TestIntegrationOfflineDiagnosis(t *testing.T) {
	// k=2 with α=10ms: top level covers 100 ms and pushes at that cadence.
	tb, err := NewTestbed(Dumbbell(3, 3), Options{Queue: QueuePriority, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := tb.Host("L1"), tb.Host("R1")
	victim := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	StartTCP(tb.Net, src, dst, TCPConfig{Flow: victim, Priority: 1, Duration: 100 * Millisecond})
	aggSrc, aggDst := tb.Host("L2"), tb.Host("R2")
	aggFlow := FlowKey{Src: aggSrc.IP(), Dst: aggDst.IP(), SrcPort: 7, DstPort: 7, Proto: 17}
	StartUDP(tb.Net, aggSrc, UDPConfig{
		Flow: aggFlow, Priority: 7, RateBps: 1_000_000_000,
		Start: 50 * Millisecond, Duration: 5 * Millisecond,
	})
	tb.Run(120 * Millisecond)
	alert, ok := tb.AlertFor(victim)
	if !ok {
		t.Fatal("no alert")
	}

	// Let several seconds pass: every live slot for the event's epochs is
	// recycled; only the pushed control-plane history remains. Keep some
	// traffic flowing so epochs advance.
	StartUDP(tb.Net, tb.Host("L3"), UDPConfig{
		Flow:    FlowKey{Src: tb.Host("L3").IP(), Dst: tb.Host("R3").IP(), SrcPort: 9, DstPort: 9, Proto: 17},
		RateBps: 1_000_000, Start: 200 * Millisecond, Duration: 3 * simtime.Second,
	})
	tb.Run(3500 * Millisecond)

	d := tb.Analyzer.DiagnoseContention(alert)
	if d.Kind != KindPriorityContention {
		t.Fatalf("offline diagnosis kind = %v (%s)", d.Kind, d.Conclusion)
	}
	found := false
	for _, c := range d.Culprits {
		if c.Flow == aggFlow {
			found = true
		}
	}
	if !found {
		t.Fatalf("offline diagnosis missed the aggressor: %v", d.Culprits)
	}
}

// TestIntegrationHostChurn verifies the §4.1.2 correctness argument: a host
// going silent leaves only harmless stale bits, and an analyzer-driven MPH
// rebuild (membership change) keeps the system consistent.
func TestIntegrationHostChurn(t *testing.T) {
	tb, err := NewTestbed(Dumbbell(3, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := tb.Host("L1")
	r1, r2 := tb.Host("R1"), tb.Host("R2")
	// Traffic to two hosts; then R2 "fails" (its flow simply stops).
	for i, dst := range []*Host{r1, r2} {
		StartUDP(tb.Net, src, UDPConfig{
			Flow:    FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: uint16(100 + i), DstPort: 9, Proto: 17},
			RateBps: 50_000_000, Start: 0, Duration: 20 * Millisecond,
		})
	}
	tb.Run(40 * Millisecond)

	sl := tb.Switch("SL")
	ag := tb.SwitchAgents[sl.NodeID()]
	res := ag.PullPointers(simtime.EpochRange{Lo: 0, Hi: 3})
	dir := tb.Analyzer.Dir
	if !res.Hosts.Get(dir.IndexOf(r1.IP())) || !res.Hosts.Get(dir.IndexOf(r2.IP())) {
		t.Fatalf("pre-churn pointers incomplete")
	}

	// R2's bit remains set for the old epochs — stale but harmless: the
	// analyzer simply contacts a host that reports no matching records.
	agR2 := tb.HostAgents[r2.IP()]
	recs := agR2.QueryHeaders(context.Background(), hostagent.HeadersQuery{Switch: sl.NodeID(), Epochs: simtime.EpochRange{Lo: 1000, Hi: 1001}}).Records
	if len(recs) != 0 {
		t.Fatalf("silent host returned future records")
	}

	// Membership change: rebuild the directory without R2 and redistribute
	// (the §4.3 responsibility) — swapping the backend behind the Directory
	// seam without touching the analyzer's procedures.
	var ips []netsim.IPv4
	for _, h := range tb.Topo.Hosts() {
		if h.IP() != r2.IP() {
			ips = append(ips, h.IP())
		}
	}
	newDir, err := analyzer.NewMemoryDirectory(ips, tb.SwitchAgents)
	if err != nil {
		t.Fatal(err)
	}
	tb.Analyzer.Dir = newDir
	if err := newDir.Distribute(context.Background()); err != nil {
		t.Fatal(err)
	}

	// New traffic after the rebuild lands at the right indices.
	StartUDP(tb.Net, src, UDPConfig{
		Flow:    FlowKey{Src: src.IP(), Dst: r1.IP(), SrcPort: 300, DstPort: 9, Proto: 17},
		RateBps: 50_000_000, Start: 50 * Millisecond, Duration: 10 * Millisecond,
	})
	tb.Run(80 * Millisecond)
	e := ag.LocalEpochAt(60 * Millisecond)
	res = ag.PullPointers(simtime.EpochRange{Lo: e, Hi: e})
	if !res.Hosts.Get(newDir.IndexOf(r1.IP())) {
		t.Fatalf("post-rebuild pointers missing R1")
	}
}

// TestIntegrationDeterminism runs an identical contention scenario twice and
// requires bit-identical outcomes — the property all experiment claims rest
// on.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() (simtime.Time, int, uint64) {
		tb, err := NewTestbed(Chain(2, 2, 2), Options{Queue: QueuePriority, ClockSeed: 42})
		if err != nil {
			t.Fatal(err)
		}
		a, f := tb.Host("h1-1"), tb.Host("h3-2")
		victim := FlowKey{Src: a.IP(), Dst: f.IP(), SrcPort: 1, DstPort: 2, Proto: 6}
		StartTCP(tb.Net, a, f, TCPConfig{Flow: victim, Priority: 1, Duration: 10 * Millisecond})
		b := tb.Host("h1-2")
		d := tb.Host("h2-2")
		StartUDP(tb.Net, b, UDPConfig{
			Flow:     FlowKey{Src: b.IP(), Dst: d.IP(), SrcPort: 3, DstPort: 4, Proto: 17},
			Priority: 7, RateBps: 1_000_000_000, Start: 5 * Millisecond, Duration: 400 * Microsecond})
		tb.Run(30 * Millisecond)
		alert, ok := tb.AlertFor(victim)
		if !ok {
			t.Fatal("no alert")
		}
		diag := tb.Analyzer.DiagnoseContention(alert)
		return alert.DetectedAt, len(diag.Culprits), tb.Net.Engine.Processed()
	}
	at1, nc1, ev1 := run()
	at2, nc2, ev2 := run()
	if at1 != at2 || nc1 != nc2 || ev1 != ev2 {
		t.Fatalf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)", at1, nc1, ev1, at2, nc2, ev2)
	}
}
