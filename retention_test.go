package switchpointer

import (
	"bytes"
	"testing"

	"switchpointer/internal/store"
)

// runFlowChurn drives a long simulation whose flow population churns: many
// short UDP flows arrive at one host over virtual time, each leaving a flow
// record behind. Returns the receiving host's agent store size at the end.
func runFlowChurn(t *testing.T, retain *store.Retention, sink *bytes.Buffer) (*Testbed, int) {
	t.Helper()
	tb, err := NewTestbed(Dumbbell(2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := tb.Host("L1")
	dst := tb.Host("R1")
	if retain != nil {
		r := *retain
		r.Sink = sink
		tb.HostAgents[dst.IP()].EnableRetention(r, 10*Millisecond)
	}
	const flows = 64
	for i := 0; i < flows; i++ {
		StartUDP(tb.Net, src, UDPConfig{
			Flow: FlowKey{Src: src.IP(), Dst: dst.IP(),
				SrcPort: uint16(10000 + i), DstPort: 80, Proto: 17},
			RateBps:  100_000_000,
			Start:    Time(i) * 10 * Millisecond,
			Duration: Millisecond,
		})
	}
	tb.Run(Time(flows+10) * 10 * Millisecond)
	return tb, tb.HostAgents[dst.IP()].Store.Len()
}

// TestStoreRetentionBoundsLongSimulation is the eviction satellite's gate:
// without a policy a long simulation's store grows with every flow ever
// seen; with WithRetention-style config the resident set stays within the
// hot window, and everything evicted is recoverable from the gob sink.
func TestStoreRetentionBoundsLongSimulation(t *testing.T) {
	_, unbounded := runFlowChurn(t, nil, nil)
	if unbounded != 64 {
		t.Fatalf("control run holds %d records, want 64 (one per flow)", unbounded)
	}

	var sink bytes.Buffer
	tb, bounded := runFlowChurn(t, &store.Retention{
		HotEpochs:  5,
		Alpha:      10 * Millisecond,
		MaxRecords: 16,
	}, &sink)
	if bounded > 16 {
		t.Fatalf("retained run holds %d records, want ≤ 16", bounded)
	}
	ag := tb.HostAgents[tb.Host("R1").IP()]
	evicted := ag.Store.Evicted()
	if evicted == 0 {
		t.Fatal("no evictions despite churn")
	}
	if int(evicted)+bounded != 64 {
		t.Fatalf("accounting: %d evicted + %d resident != 64", evicted, bounded)
	}

	// Every evicted record is recoverable from the flush stream: the sink
	// holds a sequence of Flush-shaped gob segments.
	archive := store.New()
	total := 0
	for sink.Len() > 0 {
		segment := store.New()
		if err := segment.Load(&sink); err != nil {
			t.Fatalf("decoding eviction segment: %v", err)
		}
		for _, r := range segment.All() {
			archive.Get(r.Flow).Bytes = r.Bytes
			total++
		}
	}
	if total != int(evicted) {
		t.Fatalf("sink holds %d records, want %d", total, evicted)
	}
	if archive.Len() == 0 {
		t.Fatal("archive reconstruction empty")
	}
}
