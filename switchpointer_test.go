package switchpointer

import (
	"testing"
)

// TestPublicAPIQuickstart walks the documented quick-start flow end to end
// through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	tb, err := NewTestbed(Dumbbell(3, 3), Options{Queue: QueuePriority})
	if err != nil {
		t.Fatal(err)
	}
	src := tb.Host("L1")
	dst := tb.Host("R1")
	victim := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	StartTCP(tb.Net, src, dst, TCPConfig{Flow: victim, Priority: 1, Duration: 100 * Millisecond})

	aggSrc := tb.Host("L2")
	aggDst := tb.Host("R2")
	StartUDP(tb.Net, aggSrc, UDPConfig{
		Flow:     FlowKey{Src: aggSrc.IP(), Dst: aggDst.IP(), SrcPort: 7, DstPort: 7, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 50 * Millisecond, Duration: 5 * Millisecond,
	})
	tb.Run(120 * Millisecond)

	alert, ok := tb.AlertFor(victim)
	if !ok {
		t.Fatalf("no alert")
	}
	diag := tb.Analyzer.DiagnoseContention(alert)
	if diag.Kind != KindPriorityContention {
		t.Fatalf("kind = %v (%s)", diag.Kind, diag.Conclusion)
	}
	if len(diag.Culprits) != 1 || diag.Culprits[0].Flow.Dst != aggDst.IP() {
		t.Fatalf("culprits = %+v", diag.Culprits)
	}
	if diag.Total() <= 0 || diag.Total() > 100*Millisecond {
		t.Fatalf("diagnosis time = %v", diag.Total())
	}
}

func TestPublicAPITopologies(t *testing.T) {
	for name, build := range map[string]BuildFunc{
		"dumbbell":  Dumbbell(2, 2),
		"chain":     Chain(1, 1),
		"leafspine": LeafSpine(2, 2, 1),
		"fattree":   FatTree(4),
		"parallel":  ParallelLinks(2, 2, 2),
	} {
		tb, err := NewTestbed(build, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Topo.Hosts()) == 0 || len(tb.SwitchAgents) == 0 {
			t.Fatalf("%s: empty testbed", name)
		}
	}
}

func TestPublicAPIINTMode(t *testing.T) {
	// Eps of 1 ns ≈ perfectly synchronized clocks (0 selects the default α).
	tb, err := NewTestbed(FatTree(4), Options{Mode: ModeINT, Eps: Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	hosts := tb.Topo.Hosts()
	src, dst := hosts[0], hosts[15]
	flow := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2, Proto: 17}
	StartUDP(tb.Net, src, UDPConfig{Flow: flow, RateBps: 100_000_000, Duration: 5 * Millisecond})
	tb.Run(20 * Millisecond)
	rec, ok := tb.HostAgents[dst.IP()].Store.Lookup(flow)
	if !ok {
		t.Fatalf("no record under INT mode")
	}
	if len(rec.Path) != 5 {
		t.Fatalf("INT path = %v, want 5-switch inter-pod trajectory", rec.Path)
	}
	// With synchronized clocks and a single-epoch transfer, INT epochs are
	// exact at every hop.
	for i, er := range rec.Epochs {
		if er.Len() != 1 {
			t.Fatalf("hop %d epochs %v not exact", i, er)
		}
	}
}

func TestIPHelper(t *testing.T) {
	if IP(10, 1, 2, 3).String() != "10.1.2.3" {
		t.Fatalf("IP helper broken")
	}
	if DefaultCostModel().ConnInit <= 0 {
		t.Fatalf("cost model empty")
	}
}
