package switchpointer

import (
	"context"
	"testing"
)

// TestPublicAPIQuickstart walks the documented quick-start flow end to end
// through the facade only: functional options, the alert stream, and the
// unified query dispatch.
func TestPublicAPIQuickstart(t *testing.T) {
	tb, err := New(Dumbbell(3, 3), WithQueueDiscipline(QueuePriority))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	src := tb.Host("L1")
	dst := tb.Host("R1")
	victim := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	StartTCP(tb.Net, src, dst, TCPConfig{Flow: victim, Priority: 1, Duration: 100 * Millisecond})

	aggSrc := tb.Host("L2")
	aggDst := tb.Host("R2")
	StartUDP(tb.Net, aggSrc, UDPConfig{
		Flow:     FlowKey{Src: aggSrc.IP(), Dst: aggDst.IP(), SrcPort: 7, DstPort: 7, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 50 * Millisecond, Duration: 5 * Millisecond,
	})
	alerts := tb.Subscribe(AlertFilter{Flow: victim})
	if end := tb.Run(120 * Millisecond); end != 120*Millisecond {
		t.Fatalf("Run returned %v, want 120ms", end)
	}

	var alert Alert
	select {
	case alert = <-alerts:
	default:
		t.Fatalf("no alert on the stream")
	}
	// The compatibility shim must agree with the stream.
	polled, ok := tb.AlertFor(victim)
	if !ok || polled.DetectedAt != alert.DetectedAt {
		t.Fatalf("AlertFor disagrees with Subscribe: %v vs %v", polled, alert)
	}

	rep, err := tb.Analyzer.Run(context.Background(), ContentionQuery{Alert: alert})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindPriorityContention {
		t.Fatalf("kind = %v (%s)", rep.Kind, rep.Conclusion)
	}
	if len(rep.Culprits) != 1 || rep.Culprits[0].Flow.Dst != aggDst.IP() {
		t.Fatalf("culprits = %+v", rep.Culprits)
	}
	if rep.Total() <= 0 || rep.Total() > 100*Millisecond {
		t.Fatalf("diagnosis time = %v", rep.Total())
	}
	if len(rep.Consulted) != rep.HostsContacted {
		t.Fatalf("Consulted = %v, HostsContacted = %d", rep.Consulted, rep.HostsContacted)
	}
	// The deprecated poll-style entry point returns the same classification.
	if diag := tb.Analyzer.DiagnoseContention(alert); diag.Kind != rep.Kind {
		t.Fatalf("shim kind %v != %v", diag.Kind, rep.Kind)
	}
}

// TestRunIdempotentPastEnd verifies the repaired Testbed.Run contract.
func TestRunIdempotentPastEnd(t *testing.T) {
	tb, err := New(Dumbbell(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if end := tb.Run(10 * Millisecond); end != 10*Millisecond {
		t.Fatalf("first Run = %v", end)
	}
	// Re-running to an earlier or equal time must not move the clock.
	if end := tb.Run(5 * Millisecond); end != 10*Millisecond {
		t.Fatalf("backwards Run = %v, want clock pinned at 10ms", end)
	}
	if end := tb.Run(10 * Millisecond); end != 10*Millisecond {
		t.Fatalf("repeat Run = %v", end)
	}
	if end := tb.Run(12 * Millisecond); end != 12*Millisecond {
		t.Fatalf("forward Run = %v", end)
	}
}

func TestPublicAPITopologies(t *testing.T) {
	for name, build := range map[string]BuildFunc{
		"dumbbell":  Dumbbell(2, 2),
		"chain":     Chain(1, 1),
		"leafspine": LeafSpine(2, 2, 1),
		"fattree":   FatTree(4),
		"parallel":  ParallelLinks(2, 2, 2),
	} {
		tb, err := NewTestbed(build, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Topo.Hosts()) == 0 || len(tb.SwitchAgents) == 0 {
			t.Fatalf("%s: empty testbed", name)
		}
	}
}

func TestPublicAPIINTMode(t *testing.T) {
	// Eps of 1 ns ≈ perfectly synchronized clocks (0 selects the default α).
	tb, err := NewTestbed(FatTree(4), Options{Mode: ModeINT, Eps: Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	hosts := tb.Topo.Hosts()
	src, dst := hosts[0], hosts[15]
	flow := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2, Proto: 17}
	StartUDP(tb.Net, src, UDPConfig{Flow: flow, RateBps: 100_000_000, Duration: 5 * Millisecond})
	tb.Run(20 * Millisecond)
	rec, ok := tb.HostAgents[dst.IP()].Store.Lookup(flow)
	if !ok {
		t.Fatalf("no record under INT mode")
	}
	if len(rec.Path) != 5 {
		t.Fatalf("INT path = %v, want 5-switch inter-pod trajectory", rec.Path)
	}
	// With synchronized clocks and a single-epoch transfer, INT epochs are
	// exact at every hop.
	for i, er := range rec.Epochs {
		if er.Len() != 1 {
			t.Fatalf("hop %d epochs %v not exact", i, er)
		}
	}
}

func TestIPHelper(t *testing.T) {
	if IP(10, 1, 2, 3).String() != "10.1.2.3" {
		t.Fatalf("IP helper broken")
	}
	if DefaultCostModel().ConnInit <= 0 {
		t.Fatalf("cost model empty")
	}
}
