module switchpointer

go 1.24
