#!/bin/sh
# Benchmark gate: runs the paper-figure benchmark suite (root package) with
# -benchmem, emits a machine-readable JSON artifact so the performance
# trajectory is tracked PR over PR, and prints a before/after delta against
# the artifact's frozen baseline.
#
# Usage:  scripts/bench.sh [out.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 3x)
#   PATTERN     -bench regexp           (default . — every benchmark)
#   BENCHCOUNT  go test -count value    (default 5) — the artifact records
#               each benchmark's BEST (min ns/op) run, which is the standard
#               robust estimator on noisy shared machines: interference only
#               ever slows a run down, so the minimum is the closest sample
#               to the true cost
#
# Output schema (out.json, default BENCH_PR10.json):
#   {
#     "benchtime": "3x",
#     "baseline":  { "<Benchmark>": {"ns_per_op":…, "b_per_op":…,
#                                    "allocs_per_op":…, "metrics":{…}} },
#     "current":   { … same shape … }
#   }
# "current" is overwritten on every run. "baseline" is preserved when the
# output file already has one; on a fresh file the baseline seeds from the
# previous PR's artifact if present (BENCH_PR10.json seeds from
# BENCH_PR9.json's "current" — the state this PR started from), else from
# this first run.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
SEED_FROM="BENCH_PR9.json"
BENCHTIME="${BENCHTIME:-3x}"
PATTERN="${PATTERN:-.}"
BENCHCOUNT="${BENCHCOUNT:-5}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$BENCHCOUNT" . | tee "$TMP"

python3 - "$TMP" "$OUT" "$BENCHTIME" "$SEED_FROM" <<'EOF'
import json, re, sys

raw, out, benchtime, seed_from = sys.argv[1:5]

def parse(path):
    # Best (min ns/op) run per benchmark across -count repetitions; each
    # entry stays internally consistent (one actual run's numbers).
    benches = {}
    for line in open(path):
        if not line.startswith("Benchmark"):
            continue
        fields = line.split()
        if len(fields) < 4:
            continue
        name = re.sub(r"-\d+$", "", fields[0])
        entry = {"iterations": int(fields[1]), "metrics": {}}
        rest = fields[2:]
        for val, unit in zip(rest[0::2], rest[1::2]):
            try:
                v = float(val)
            except ValueError:
                continue
            if unit == "ns/op":
                entry["ns_per_op"] = v
            elif unit == "B/op":
                entry["b_per_op"] = v
            elif unit == "allocs/op":
                entry["allocs_per_op"] = v
            else:
                entry["metrics"][unit] = v
        prev = benches.get(name)
        if prev is None or entry.get("ns_per_op", 1e30) < prev.get("ns_per_op", 1e30):
            benches[name] = entry
    return benches

current = parse(raw)
doc = {"benchtime": benchtime, "baseline": current, "current": current}
try:
    prev = json.load(open(out))
    if isinstance(prev, dict) and prev.get("baseline"):
        doc["baseline"] = prev["baseline"]
except (OSError, ValueError):
    # Fresh artifact: freeze the previous PR's "current" as this PR's
    # baseline, so the delta below reports what this PR changed.
    try:
        seed = json.load(open(seed_from))
        if isinstance(seed, dict) and seed.get("current"):
            doc["baseline"] = seed["current"]
    except (OSError, ValueError):
        pass

with open(out, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"bench: wrote {out} ({len(current)} benchmarks)")

# Before/after delta against the frozen baseline (wall-clock; negative is
# faster). Virtual-time metrics are expected byte-identical and are flagged
# when they drift. Exempt from the drift gate: every metric of the
# benchmarks that MEASURE wall-clock datapath throughput (their gbps values
# legitimately vary run to run), and events/iter everywhere (events divided
# by wall-clock-chosen b.N). Exemption is per benchmark, not per metric
# name, so new metrics added to those benchmarks stay exempt while new
# virtual-time benchmarks are gated automatically.
WALL_CLOCK_BENCHES = ("BenchmarkFig9DatapathThroughput", "BenchmarkFig9PerPacket",
                      "BenchmarkAblationPacketMix", "BenchmarkDiagnosisThroughput",
                      "BenchmarkCalendarBursty")
rows = []
drift = []
for name in sorted(current):
    cur = current[name]
    base = doc["baseline"].get(name)
    if not base or "ns_per_op" not in base or "ns_per_op" not in cur:
        continue
    b, c = base["ns_per_op"], cur["ns_per_op"]
    pct = 100.0 * (c - b) / b if b else 0.0
    rows.append((name, b, c, pct))
    if name.startswith(WALL_CLOCK_BENCHES):
        continue
    for unit, v in cur.get("metrics", {}).items():
        bv = base.get("metrics", {}).get(unit)
        if bv is not None and unit != "events/iter" and bv != v:
            drift.append(f"  {name} {unit}: {bv} -> {v}")
if rows:
    w = max(len(r[0]) for r in rows)
    print(f"\nbench: delta vs frozen baseline ({benchtime}):")
    print(f"  {'benchmark'.ljust(w)}  {'baseline ns/op':>16}  {'current ns/op':>16}  {'delta':>8}")
    for name, b, c, pct in rows:
        print(f"  {name.ljust(w)}  {b:16.0f}  {c:16.0f}  {pct:+7.1f}%")
if drift:
    print("\nbench: WARNING — virtual-time metrics drifted from baseline:")
    print("\n".join(drift))
EOF
