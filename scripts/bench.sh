#!/bin/sh
# Benchmark gate: runs the paper-figure benchmark suite (root package) with
# -benchmem and emits a machine-readable JSON artifact so the performance
# trajectory is tracked from PR 2 onward.
#
# Usage:  scripts/bench.sh [out.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 3x)
#   PATTERN    -bench regexp           (default . — every benchmark)
#
# Output schema (out.json, default BENCH_PR2.json):
#   {
#     "benchtime": "3x",
#     "baseline":  { "<Benchmark>": {"ns_per_op":…, "b_per_op":…,
#                                    "allocs_per_op":…, "metrics":{…}} },
#     "current":   { … same shape … }
#   }
# "current" is overwritten on every run. "baseline" is preserved when the
# output file already has one (PR 2 seeded it with the pre-optimization
# numbers); on a fresh file the first run becomes the baseline.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR2.json}"
BENCHTIME="${BENCHTIME:-3x}"
PATTERN="${PATTERN:-.}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"

python3 - "$TMP" "$OUT" "$BENCHTIME" <<'EOF'
import json, re, sys

raw, out, benchtime = sys.argv[1], sys.argv[2], sys.argv[3]

def parse(path):
    benches = {}
    for line in open(path):
        if not line.startswith("Benchmark"):
            continue
        fields = line.split()
        if len(fields) < 4:
            continue
        name = re.sub(r"-\d+$", "", fields[0])
        entry = {"iterations": int(fields[1]), "metrics": {}}
        rest = fields[2:]
        for val, unit in zip(rest[0::2], rest[1::2]):
            try:
                v = float(val)
            except ValueError:
                continue
            if unit == "ns/op":
                entry["ns_per_op"] = v
            elif unit == "B/op":
                entry["b_per_op"] = v
            elif unit == "allocs/op":
                entry["allocs_per_op"] = v
            else:
                entry["metrics"][unit] = v
        benches[name] = entry
    return benches

current = parse(raw)
doc = {"benchtime": benchtime, "baseline": current, "current": current}
try:
    prev = json.load(open(out))
    if isinstance(prev, dict) and prev.get("baseline"):
        doc["baseline"] = prev["baseline"]
except (OSError, ValueError):
    pass

with open(out, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"bench: wrote {out} ({len(current)} benchmarks)")
EOF
