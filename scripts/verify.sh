#!/bin/sh
# Tier-1 verification: build + lint + test + cmd/examples compile checks.
# Equivalent to `make verify`; kept as a script for environments without make.
set -eu
cd "$(dirname "$0")/.."

go build ./...

# Lint leg, run before the tests: gofmt, go vet, then the splint invariant
# suite (detlint, sortlint, locklint, ctxlint — see README "Invariants &
# static analysis"). splint exits 1 on any finding, failing the gate.
FMT_OUT="$(gofmt -l .)"
if [ -n "$FMT_OUT" ]; then
	echo "gofmt needed:"
	echo "$FMT_OUT"
	exit 1
fi
go vet ./...
go run ./cmd/splint ./...

go test ./...

# Race detector over the concurrent surface (analyzer fan-out, RPC fan-out +
# HTTP client, host-agent query executors, the sharded record store under
# concurrent query+absorption, the event engine, the cluster service plane —
# admission controller + loopback HTTP trio — and the state-sync plane:
# snapshot streaming, bootstrap, ingest, segment log — plus the switch
# agents, the packet simulator, and the root-package integration tests).
# Scoped to these packages so the full gate stays fast.
go test -race ./internal/analyzer ./internal/rpc ./internal/hostagent ./internal/store ./internal/eventq ./internal/cluster ./internal/statesync ./internal/switchagent ./internal/netsim ./internal/trace .

mkdir -p bin
go build -o bin/ ./cmd/...
for d in examples/*/; do
	echo "build $d"
	go build -o /dev/null "./$d"
done

# e2e smoke: a loopback spd trio (host + switch + analyzer daemons, each a
# separate process rebuilding the same deterministic scenario) answers one
# RedLightsQuery submitted over the wire by spctl --remote. Asserts the
# report is non-empty (a culprit was found). Every daemon binds an
# ephemeral port (-listen 127.0.0.1:0) and its actual address is scraped
# from the "listening on" stderr line, so leftover processes or port
# collisions can never make the smoke pass stale or fail spuriously.
SMOKE_DIR="$(mktemp -d)"
trap 'kill $SPD_HOST_PID $SPD_SWITCH_PID $SPD_ANALYZER_PID 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
SPD_HOST_PID= SPD_SWITCH_PID= SPD_ANALYZER_PID=

# spd_addr LOGFILE — waits for the daemon's "listening on" line and prints
# the bound host:port.
spd_addr() {
	i=0
	while [ $i -lt 300 ]; do
		addr="$(sed -n 's/.*listening on \(.*\)$/\1/p' "$1" | head -n 1)"
		if [ -n "$addr" ]; then
			echo "$addr"
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "verify: daemon never reported its address ($1):" >&2
	cat "$1" >&2
	return 1
}

./bin/spd host -scenario redlights -listen 127.0.0.1:0 2>"$SMOKE_DIR/host.log" &
SPD_HOST_PID=$!
./bin/spd switch -scenario redlights -listen 127.0.0.1:0 2>"$SMOKE_DIR/switch.log" &
SPD_SWITCH_PID=$!
HOST_ADDR="$(spd_addr "$SMOKE_DIR/host.log")"
SWITCH_ADDR="$(spd_addr "$SMOKE_DIR/switch.log")"
./bin/spd analyzer -scenario redlights -listen 127.0.0.1:0 \
	-alert-pipeline -alert-dedup 1s \
	-hosts "http://$HOST_ADDR" -switches "http://$SWITCH_ADDR" 2>"$SMOKE_DIR/analyzer.log" &
SPD_ANALYZER_PID=$!
ANALYZER_ADDR="$(spd_addr "$SMOKE_DIR/analyzer.log")"
./bin/spd wait -url "http://$HOST_ADDR/healthz" -timeout 60s
./bin/spd wait -url "http://$SWITCH_ADDR/healthz" -timeout 60s
./bin/spd wait -url "http://$ANALYZER_ADDR/healthz" -timeout 60s
SMOKE_OUT="$(./bin/spctl -problem redlights -remote "http://$ANALYZER_ADDR")"
echo "$SMOKE_OUT"
case "$SMOKE_OUT" in
*"diagnosis: too-many-red-lights"*"culprit:"*) echo "e2e smoke: OK" ;;
*) echo "e2e smoke: FAILED (unexpected report above)"; exit 1 ;;
esac

# Version smoke: both binaries identify themselves.
./bin/spd -version | grep -q "^spd v" || { echo "version smoke: spd -version broken" >&2; exit 1; }
./bin/spctl -version | grep -q "^spctl v" || { echo "version smoke: spctl -version broken" >&2; exit 1; }

# Trace smoke: the diagnosis above left a trace in every daemon's flight
# recorder. spctl -trace merges the trio's views into one span tree, which
# must contain spans from all three roles; the canonical JSON form must be
# byte-identical to the committed golden (the same bytes the loopback test
# gates — proving loopback and a real spd trio produce the same trace), and
# a second fetch+merge must be byte-identical to the first (/traces is
# deterministic and read-only).
TRACE_TREE="$(./bin/spctl -trace "http://$ANALYZER_ADDR")"
echo "$TRACE_TREE"
for roletag in "[analyzer]" "[host]" "[switch]"; do
	case "$TRACE_TREE" in
	*"$roletag"*) ;;
	*) echo "trace smoke: merged trace missing $roletag spans" >&2; exit 1 ;;
	esac
done
./bin/spctl -json -trace "http://$ANALYZER_ADDR" >"$SMOKE_DIR/trace1.json"
if ! cmp -s "$SMOKE_DIR/trace1.json" internal/cluster/testdata/redlights_trace.golden.json; then
	echo "trace smoke: trio trace diverged from committed golden" >&2
	diff internal/cluster/testdata/redlights_trace.golden.json "$SMOKE_DIR/trace1.json" >&2 || true
	exit 1
fi
./bin/spctl -json -trace "http://$ANALYZER_ADDR" >"$SMOKE_DIR/trace2.json"
cmp "$SMOKE_DIR/trace1.json" "$SMOKE_DIR/trace2.json" || { echo "trace smoke: double fetch not byte-identical" >&2; exit 1; }
echo "trace smoke: OK"

# Observability smoke: every role of the trio serves Prometheus /metrics.
# spctl scrapes and parses each endpoint (exit non-zero on malformed
# exposition text) and the required metric families must be present per
# role. The analyzer runs with -alert-pipeline, so its pipeline families
# must be present too.
scrape_expect() {
	SCRAPE_URL="$1"
	shift
	SCRAPE_OUT="$(./bin/spctl -metrics "$SCRAPE_URL")"
	for fam in "$@"; do
		case "$SCRAPE_OUT" in
		*"$fam"*) ;;
		*)
			echo "metrics smoke: $SCRAPE_URL missing family $fam" >&2
			echo "$SCRAPE_OUT" >&2
			exit 1
			;;
		esac
	done
}
scrape_expect "http://$HOST_ADDR" \
	spd_store_resident_records spd_store_lock_acquires_total \
	spd_absorbed_packets_total spd_cold_segments_decoded_total \
	spd_coldlog_segment_writes_total spd_statesync_bootstrap_segments_total \
	spd_ready spd_process_uptime_seconds spd_build_info
scrape_expect "http://$SWITCH_ADDR" \
	spd_pointer_pulls_total spd_pointer_approx_pulls_total \
	spd_pointer_resident_bytes spd_switch_memory_bytes \
	spd_control_store_slots spd_ready spd_build_info
scrape_expect "http://$ANALYZER_ADDR" \
	spd_admission_in_flight spd_admission_admitted_total \
	spd_diagnosis_total spd_admission_queue_depth \
	spd_diagnosis_cold_rounds_total spd_build_info \
	spd_alerts_received_total spd_alerts_forwarded_total spd_ready
echo "metrics smoke: OK"

# Bootstrap smoke: the state-sync failover path. Host B starts with
# -bootstrap-from host A — it never replays the scenario, serves in the
# "syncing" state, absorbs A's snapshots, and goes "live" (spd wait gates on
# exactly that). Host A is then killed and a fresh analyzer daemon diagnoses
# against B alone: the report must find the same culprits, proving the
# bootstrapped state is the live state.
./bin/spd host -scenario redlights -bootstrap-from "http://$HOST_ADDR" \
	-listen 127.0.0.1:0 2>"$SMOKE_DIR/host_b.log" &
SPD_HOST_B_PID=$!
trap 'kill $SPD_HOST_PID $SPD_SWITCH_PID $SPD_ANALYZER_PID $SPD_HOST_B_PID $SPD_ANALYZER_B_PID 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
SPD_ANALYZER_B_PID=
HOST_B_ADDR="$(spd_addr "$SMOKE_DIR/host_b.log")"
./bin/spd wait -url "http://$HOST_B_ADDR/healthz" -timeout 60s
kill "$SPD_HOST_PID" 2>/dev/null || true
./bin/spd analyzer -scenario redlights -listen 127.0.0.1:0 \
	-hosts "http://$HOST_B_ADDR" -switches "http://$SWITCH_ADDR" 2>"$SMOKE_DIR/analyzer_b.log" &
SPD_ANALYZER_B_PID=$!
ANALYZER_B_ADDR="$(spd_addr "$SMOKE_DIR/analyzer_b.log")"
./bin/spd wait -url "http://$ANALYZER_B_ADDR/healthz" -timeout 60s
BOOT_OUT="$(./bin/spctl -problem redlights -remote "http://$ANALYZER_B_ADDR")"
echo "$BOOT_OUT"
case "$BOOT_OUT" in
*"diagnosis: too-many-red-lights"*"culprit:"*) echo "bootstrap smoke: OK" ;;
*) echo "bootstrap smoke: FAILED (unexpected report above)"; exit 1 ;;
esac

echo "verify: OK"
