#!/bin/sh
# Tier-1 verification: build + vet + test + cmd/examples compile checks.
# Equivalent to `make verify`; kept as a script for environments without make.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...

# Race detector over the concurrent surface (analyzer fan-out, RPC fan-out +
# HTTP client, host-agent query executors, the sharded record store under
# concurrent query+absorption, and the event engine). Scoped to these
# packages so the full gate stays fast.
go test -race ./internal/analyzer ./internal/rpc ./internal/hostagent ./internal/store ./internal/eventq

mkdir -p bin
go build -o bin/ ./cmd/...
for d in examples/*/; do
	echo "build $d"
	go build -o /dev/null "./$d"
done
echo "verify: OK"
