// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end to end and reports
// the headline quantity via b.ReportMetric; cmd/spbench renders the full
// artifacts. Shapes (who wins, by what factor, where crossovers fall) are
// asserted in the package test suites; the benchmarks measure cost.
package switchpointer

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/cluster"
	"switchpointer/internal/eventq"
	"switchpointer/internal/experiments"
	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/metrics"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/statesync"
	"switchpointer/internal/store"
)

func runExperiment(b *testing.B, run func() (*experiments.Result, error)) *experiments.Result {
	b.Helper()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// cell parses a numeric table cell.
func cell(b *testing.B, res *experiments.Result, table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(res.Tables[table].Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell(%d,%d,%d): %v", table, row, col, err)
	}
	return v
}

// BenchmarkFig2aPriorityContention regenerates Figure 2(a): throughput and
// inter-packet arrival timelines of the low-priority TCP flow under five
// high-priority UDP burst batches, m ∈ {1,2,4,8,16}.
func BenchmarkFig2aPriorityContention(b *testing.B) {
	res := runExperiment(b, experiments.Fig2a)
	// Summary table: max inter-packet gap at m=16 (paper: up to ~8–10 ms).
	b.ReportMetric(cell(b, res, 2, 4, 2), "maxgap_m16_ms")
}

// BenchmarkFig2bMicroburst regenerates Figure 2(b): the FIFO variant.
func BenchmarkFig2bMicroburst(b *testing.B) {
	res := runExperiment(b, experiments.Fig2b)
	b.ReportMetric(cell(b, res, 2, 4, 2), "maxgap_m16_ms")
}

// BenchmarkFig3RedLights regenerates Figure 3: victim throughput at S1/S2
// across two sequential 400 µs red lights.
func BenchmarkFig3RedLights(b *testing.B) {
	res := runExperiment(b, experiments.Fig3)
	// Throughput at S2 in the red-light window (row 11 ≈ t=5.5ms).
	b.ReportMetric(cell(b, res, 0, 11, 2), "s2_gbps_at_5p5ms")
}

// BenchmarkFig4Cascades regenerates Figure 4: flow timelines with and
// without the traffic cascade.
func BenchmarkFig4Cascades(b *testing.B) {
	runExperiment(b, experiments.Fig4)
}

// BenchmarkFig7DebuggingTime regenerates Figure 7: the four-phase debugging
// time breakdown for priority contention, m ∈ {1..16}.
func BenchmarkFig7DebuggingTime(b *testing.B) {
	res := runExperiment(b, experiments.Fig7)
	rows := res.Tables[0].Rows
	b.ReportMetric(cell(b, res, 0, len(rows)-1, 5), "total_m16_ms")
}

// BenchmarkFig8LoadImbalance regenerates Figure 8: load-imbalance diagnosis
// latency versus servers with relevant flows (4..96).
func BenchmarkFig8LoadImbalance(b *testing.B) {
	res := runExperiment(b, experiments.Fig8)
	rows := res.Tables[0].Rows
	b.ReportMetric(cell(b, res, 0, len(rows)-1, 1), "diag_96srv_ms")
}

// BenchmarkFig9DatapathThroughput regenerates Figure 9: measured datapath
// throughput vs packet size for the OVS-like baseline and SwitchPointer
// k=1/k=5.
func BenchmarkFig9DatapathThroughput(b *testing.B) {
	res := runExperiment(b, experiments.Fig9)
	b.ReportMetric(cell(b, res, 0, 2, 3), "k5_gbps_256B")
	b.ReportMetric(cell(b, res, 0, 0, 1), "baseline_gbps_64B")
}

// BenchmarkFig9PerPacket measures the raw per-packet pipeline costs that
// Figure 9 is derived from.
func BenchmarkFig9PerPacket(b *testing.B) {
	d, err := experiments.NewDatapathBench()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.StepBaseline(i)
		}
	})
	b.Run("switchpointer-k1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.StepSwitchPointer(i, 1)
		}
	})
	b.Run("switchpointer-k5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.StepSwitchPointer(i, 5)
		}
	})
	_ = d.Sink()
}

// BenchmarkFig10aMemory regenerates Figure 10(a): switch memory vs k over
// the paper's (n, α) grid, with measured structures and measured MPHs.
func BenchmarkFig10aMemory(b *testing.B) {
	res := runExperiment(b, experiments.Fig10a)
	b.ReportMetric(cell(b, res, 0, 2, 2), "mem_MB_n1M_a10_k3")
}

// BenchmarkFig10bBandwidth regenerates Figure 10(b): data→control plane
// bandwidth vs k.
func BenchmarkFig10bBandwidth(b *testing.B) {
	res := runExperiment(b, experiments.Fig10b)
	b.ReportMetric(cell(b, res, 0, 0, 2), "bw_Mbps_n1M_a10_k1")
}

// BenchmarkPointerBackends regenerates the pointer slot-backend ablation:
// adaptive/dense/bloom resident memory, push bytes, and candidate accuracy
// on the sparse 4096-active-host workload at n = 100K and 1M. The run
// itself enforces the gates (adaptive byte-identical to dense, zero bloom
// false negatives, ≥10× resident reduction at 1M, constant bloom memory).
func BenchmarkPointerBackends(b *testing.B) {
	res := runExperiment(b, experiments.AblationPointerMemory)
	b.ReportMetric(cell(b, res, 0, 3, 2), "dense_res_B_n1M")
	b.ReportMetric(cell(b, res, 0, 4, 2), "adaptive_res_B_n1M")
	b.ReportMetric(cell(b, res, 1, 0, 1), "res_ratio_n1M")
	b.ReportMetric(cell(b, res, 1, 1, 1), "bloom_mem_B")
	b.ReportMetric(cell(b, res, 0, 5, 6), "bloom_fp_n1M")
}

// BenchmarkFig11Recycling regenerates Figure 11: pointer recycling periods.
func BenchmarkFig11Recycling(b *testing.B) {
	res := runExperiment(b, experiments.Fig11)
	b.ReportMetric(cell(b, res, 0, 0, 2), "level2_ms_a10")
}

// BenchmarkFig12QueryResponse regenerates Figure 12: top-100 query response
// time, SwitchPointer vs PathDump, 96 servers.
func BenchmarkFig12QueryResponse(b *testing.B) {
	res := runExperiment(b, experiments.Fig12)
	rows := res.Tables[0].Rows
	b.ReportMetric(cell(b, res, 0, len(rows)-1, 2), "pathdump_96srv_ms")
	b.ReportMetric(cell(b, res, 0, 0, 1), "sp_1srv_ms")
}

// BenchmarkSec61Memory regenerates the §6.1 memory constants.
func BenchmarkSec61Memory(b *testing.B) {
	res := runExperiment(b, experiments.Sec61Memory)
	b.ReportMetric(cell(b, res, 0, 0, 1), "mph_100K_KB")
}

// BenchmarkAblationRPCPooling quantifies the §6.2 connection-pooling fix.
func BenchmarkAblationRPCPooling(b *testing.B) {
	runExperiment(b, experiments.AblationRPCPooling)
}

// BenchmarkAblationStrawmanHash quantifies the §4.1.2 strawman hash table
// against the minimal perfect hash.
func BenchmarkAblationStrawmanHash(b *testing.B) {
	runExperiment(b, experiments.AblationStrawmanHash)
}

// BenchmarkAblationPruning quantifies the §4.3 search-radius reduction.
func BenchmarkAblationPruning(b *testing.B) {
	runExperiment(b, experiments.AblationPruning)
}

// BenchmarkAblationHeaderModes compares commodity vs INT embedding.
func BenchmarkAblationHeaderModes(b *testing.B) {
	runExperiment(b, experiments.AblationHeaderModes)
}

// BenchmarkEndToEndRedLightsDiagnosis measures the complete §5.2 pipeline:
// simulate, trigger, diagnose.
func BenchmarkEndToEndRedLightsDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := NewTestbed(Chain(2, 2, 2), Options{Queue: QueuePriority})
		if err != nil {
			b.Fatal(err)
		}
		a := tb.Host("h1-1")
		f := tb.Host("h3-2")
		victim := FlowKey{Src: a.IP(), Dst: f.IP(), SrcPort: 1, DstPort: 2, Proto: 6}
		StartTCP(tb.Net, a, f, TCPConfig{Flow: victim, Priority: 1, Duration: 10 * Millisecond})
		bHost := tb.Host("h1-2")
		dHost := tb.Host("h2-2")
		StartUDP(tb.Net, bHost, UDPConfig{
			Flow:     FlowKey{Src: bHost.IP(), Dst: dHost.IP(), SrcPort: 3, DstPort: 4, Proto: 17},
			Priority: 7, RateBps: 1_000_000_000,
			Start: 5 * Millisecond, Duration: 400 * Microsecond})
		tb.Run(30 * Millisecond)
		if alert, ok := tb.AlertFor(victim); ok {
			tb.Analyzer.DiagnoseContention(alert)
		}
	}
}

// BenchmarkSimulatorEventRate measures raw simulator throughput (events/s)
// to document the substrate's capacity.
func BenchmarkSimulatorEventRate(b *testing.B) {
	tb, err := NewTestbed(Dumbbell(2, 2), Options{})
	if err != nil {
		b.Fatal(err)
	}
	src := tb.Host("L1")
	dst := tb.Host("R1")
	StartUDP(tb.Net, src, UDPConfig{
		Flow:    FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2, Proto: 17},
		RateBps: 1_000_000_000, Duration: simtime.Second * 3600,
	})
	b.ResetTimer()
	horizon := tb.Net.Now()
	for i := 0; i < b.N; i++ {
		horizon += Millisecond
		tb.Net.RunUntil(horizon)
	}
	b.ReportMetric(float64(tb.Net.Engine.Processed())/float64(b.N), "events/iter")
}

// BenchmarkAblationEventQueue is the scheduler ablation: the same
// simulator event-rate loop under the default calendar queue and the 4-ary
// heap it replaced. Virtual-time results are byte-identical; only the
// wall-clock cost of Engine.Step differs. Two load points: "idle" is the
// single-flow dumbbell (a handful of standing events — the heap's best
// case), "loaded" is a 16×16 dumbbell with 32 concurrent flows (the
// standing population paper-scale experiments produce — where the
// calendar's O(1) pop pays).
func BenchmarkAblationEventQueue(b *testing.B) {
	for _, load := range []struct {
		name  string
		eps   int
		flows int
	}{
		{"idle", 2, 1},
		{"loaded", 16, 32},
	} {
		for _, q := range []struct {
			name string
			opts []Option
		}{
			{"calendar", nil},
			{"heap", []Option{WithHeapEventQueue()}},
		} {
			b.Run(load.name+"/"+q.name, func(b *testing.B) {
				tb, err := New(Dumbbell(load.eps, load.eps), q.opts...)
				if err != nil {
					b.Fatal(err)
				}
				for f := 0; f < load.flows; f++ {
					src := tb.Host(fmt.Sprintf("L%d", f%load.eps+1))
					dst := tb.Host(fmt.Sprintf("R%d", (f+f/load.eps)%load.eps+1))
					StartUDP(tb.Net, src, UDPConfig{
						Flow: FlowKey{Src: src.IP(), Dst: dst.IP(),
							SrcPort: uint16(f + 1), DstPort: 2, Proto: 17},
						RateBps: 1_000_000_000, Duration: simtime.Second * 3600,
					})
				}
				b.ResetTimer()
				horizon := tb.Net.Now()
				for i := 0; i < b.N; i++ {
					horizon += Millisecond
					tb.Net.RunUntil(horizon)
				}
				b.ReportMetric(float64(tb.Net.Engine.Processed())/float64(b.N), "events/iter")
			})
		}
	}
}

// BenchmarkAblationPacketMix quantifies the §6.1 acceptability argument:
// sustained throughput under realistic datacenter packet mixes.
func BenchmarkAblationPacketMix(b *testing.B) {
	res := runExperiment(b, experiments.AblationPacketMix)
	// enterprise-dc row, SwitchPointer k=5 column.
	b.ReportMetric(cell(b, res, 0, 2, 4), "k5_gbps_enterprise")
}

// BenchmarkDiagnosisThroughput runs the multi-query analyzer experiment:
// overlapping alert diagnoses through the admission controller at limits
// 1/4/16 with an emulated per-round network RTT. All metrics are wall-clock
// (reports/sec) and legitimately vary run to run — exempt from the bench
// drift gate.
func BenchmarkDiagnosisThroughput(b *testing.B) {
	res := runExperiment(b, experiments.DiagnosisThroughput)
	b.ReportMetric(cell(b, res, 0, 0, 3), "reports_per_sec_limit1")
	b.ReportMetric(cell(b, res, 0, 1, 3), "reports_per_sec_limit4")
	b.ReportMetric(cell(b, res, 0, 2, 3), "reports_per_sec_limit16")
}

// BenchmarkCalendarBursty is the calendar-queue width-autotune review
// (ROADMAP): the event engine under *bursty* schedules — runs of
// simultaneous events separated by gaps whose scale shifts between regimes
// — which is exactly the shape that exercises the feedback controller
// (calScanThreshold reviews, measured-gap width re-derivation, tie-run
// extraction). Sweeps burst size × gap regime on the calendar queue with
// the 4-ary heap as the reference. Pure wall clock; no virtual-time
// metrics, so nothing here is drift-gated.
func BenchmarkCalendarBursty(b *testing.B) {
	gapRegimes := []struct {
		name string
		gaps []simtime.Time // cycled between bursts
	}{
		{"tight1us", []simtime.Time{simtime.Microsecond}},
		{"sparse1ms", []simtime.Time{simtime.Millisecond}},
		// The adversarial mix for a width controller: dense packet-scale
		// trains, then an idle jump three orders of magnitude larger.
		{"mixed", []simtime.Time{simtime.Microsecond, simtime.Microsecond, simtime.Microsecond, 2 * simtime.Millisecond}},
	}
	for _, q := range []struct {
		name string
		opts []eventq.Option
	}{
		{"calendar", []eventq.Option{eventq.WithCalendarQueue()}},
		{"heap", []eventq.Option{eventq.WithHeapQueue()}},
	} {
		for _, burst := range []int{1, 16, 256} {
			for _, regime := range gapRegimes {
				b.Run(fmt.Sprintf("%s/burst%d/%s", q.name, burst, regime.name), func(b *testing.B) {
					eng := eventq.New(q.opts...)
					var horizon simtime.Time
					gi := 0
					nop := func() {}
					scheduleBurst := func() {
						horizon += regime.gaps[gi%len(regime.gaps)]
						gi++
						for j := 0; j < burst; j++ {
							eng.At(horizon, nop)
						}
					}
					// Standing population: keep ~32 bursts outstanding so
					// the queue works at a realistic depth.
					for k := 0; k < 32; k++ {
						scheduleBurst()
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if eng.Pending() < 32*burst {
							scheduleBurst()
						}
						eng.Step()
					}
				})
			}
		}
	}
}

// BenchmarkSnapshotBootstrap measures the state-sync snapshot leg end to
// end: a live red-lights host plane served over real loopback HTTP, each
// iteration bootstrapping a fresh record store for every host from it —
// segment encode, frame, stream, decode, Put. The network is emulated at
// 250 µs per pull round at the Bootstrapper's latency seam (this container
// has 1 CPU, so deployment-real RTT is emulated, not measured — the same
// convention as BenchmarkDiagnosisThroughput). segments/op and records/op
// are deterministic scenario properties: a drift means segments were lost
// on the wire.
func BenchmarkSnapshotBootstrap(b *testing.B) {
	s, err := cluster.BuildScenario("redlights", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	s.Run()
	srv := httptest.NewServer(cluster.HostMux(s.Testbed, nil))
	defer srv.Close()

	ips := s.HostIPs()
	boot := &statesync.Bootstrapper{RTT: 250 * time.Microsecond}
	var segments, records int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		for _, ip := range ips {
			st := store.New()
			sg, rc, err := boot.BootstrapStore(context.Background(), srv.URL+"/hosts/"+ip.String(), store.EveryEpoch, st)
			if err != nil {
				b.Fatal(err)
			}
			segments += sg
			records += rc
			got += rc
		}
		if got == 0 {
			b.Fatal("bootstrap absorbed no records")
		}
	}
	b.ReportMetric(float64(segments)/float64(b.N), "segments/op")
	b.ReportMetric(float64(records)/float64(b.N), "records/op")
}

// BenchmarkColdQueryIndexed measures the cold-tier manifest index on a
// fragmented segment log: 256 segments of 4 flows each, one flow-filtered
// header query whose answer lives in 3 of them. segments_decoded/op and
// segments_skipped/op are deterministic index properties — decoded staying
// near the answer size (plus bloom false-positive slack) is the "query
// cost proportional to the answer" claim; records_scanned/op counts what
// the surviving decodes actually read.
func BenchmarkColdQueryIndexed(b *testing.B) {
	const segs = 256
	l, err := statesync.NewSegmentLog("")
	if err != nil {
		b.Fatal(err)
	}
	coldRec := func(port uint16) *flowrec.Record {
		flow := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 2), Dst: netsim.IP(10, 1, byte(port>>8), byte(port)),
			SrcPort: port, DstPort: 80, Proto: 6}
		r := flowrec.New(flow)
		r.Path = []netsim.NodeID{1}
		r.Epochs = []simtime.EpochRange{{Lo: 0, Hi: 8}}
		r.LastSeen = 1
		r.Pkts = 1
		return r
	}
	var want []netsim.FlowKey
	for i := 0; i < segs; i++ {
		var recs []*flowrec.Record
		for j := 0; j < 4; j++ {
			recs = append(recs, coldRec(uint16(i*4+j+1)))
		}
		var buf strings.Builder
		if err := store.EncodeSegment(&buf, recs); err != nil {
			b.Fatal(err)
		}
		m := store.NewSegmentManifest(recs)
		m.Bytes = buf.Len()
		if err := l.WriteSegment(m, []byte(buf.String())); err != nil {
			b.Fatal(err)
		}
		if i == 0 || i == 101 || i == 202 {
			want = append(want, recs[0].Flow)
		}
	}
	ag := &hostagent.Agent{Store: store.New()}
	ag.SetColdReader(l)
	q := hostagent.HeadersQuery{Switch: 1, Epochs: simtime.EpochRange{Lo: 0, Hi: 1 << 30}, Flows: want}
	var decoded, skipped, scanned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans := ag.QueryHeaders(context.Background(), q)
		if len(ans.Records) != len(want) {
			b.Fatalf("answer held %d records, want %d", len(ans.Records), len(want))
		}
		if ans.ColdSegments > len(want)+8 {
			b.Fatalf("index stopped working: decoded %d of %d segments", ans.ColdSegments, segs)
		}
		decoded += ans.ColdSegments
		skipped += ans.ColdSkippedByIndex
		scanned += ans.ColdRecords
	}
	b.ReportMetric(float64(decoded)/float64(b.N), "segments_decoded/op")
	b.ReportMetric(float64(skipped)/float64(b.N), "segments_skipped/op")
	b.ReportMetric(float64(scanned)/float64(b.N), "records_scanned/op")
}

// BenchmarkMetricsScrape measures one Prometheus text render of a host
// daemon's full metric registry over the redlights testbed — the scrape
// cost every monitoring interval pays. The reported family/sample/byte
// counts are frozen virtual-time quantities (the registry carries no
// wall-clock families), so the drift gate pins them exactly.
func BenchmarkMetricsScrape(b *testing.B) {
	s, err := cluster.BuildScenario("redlights", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Testbed.Close()
	s.Run()
	reg := cluster.HostRegistry(s.Testbed, nil)
	var raw []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw = reg.Render()
	}
	b.StopTimer()
	fams, err := metrics.ParseText(bytes.NewReader(raw))
	if err != nil {
		b.Fatalf("render does not parse: %v", err)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	b.ReportMetric(float64(len(fams)), "families/op")
	b.ReportMetric(float64(samples), "samples/op")
	b.ReportMetric(float64(len(raw)), "rendered_bytes/op")
}

// stormRunner is an instantly-returning Runner for the alert-storm bench.
type stormRunner struct{}

func (stormRunner) Run(ctx context.Context, q analyzer.Query) (*analyzer.Report, error) {
	return &analyzer.Report{Kind: analyzer.KindInconclusive}, nil
}

// BenchmarkAlertStorm replays the canonical deterministic alert storm — 10
// waves × 20 flows, 100 ms apart on the virtual clock — through the
// enrichment/dedup/rate-limit pipeline into a live admission controller.
// Dedup (1 s window) and the token bucket (rate 1/s, burst 8) are clocked
// on the alerts' own DetectedAt, so the suppressed/admitted split is exact
// and drift-gated: 8 of 200 alerts reach admission.
func BenchmarkAlertStorm(b *testing.B) {
	var st cluster.PipelineStats
	var admitted uint64
	for i := 0; i < b.N; i++ {
		ad := cluster.NewAdmission(stormRunner{}, cluster.AdmissionConfig{MaxInFlight: 2, MaxQueued: 64})
		p := cluster.NewAlertPipeline(nil, cluster.PipelineConfig{
			DedupWindow: simtime.Second,
			Rate:        1,
			Burst:       8,
		}, func(ea cluster.EnrichedAlert) {
			if _, err := ad.Run(context.Background(), ea.Query); err != nil {
				b.Fatal(err)
			}
		})
		for wave := 0; wave < 10; wave++ {
			at := simtime.Time(wave) * 100 * simtime.Millisecond
			for f := 0; f < 20; f++ {
				p.Offer(hostagent.Alert{
					Kind:       hostagent.AlertThroughputDrop,
					Flow:       netsim.FlowKey{Src: netsim.IPv4(0x0a000001), Dst: netsim.IPv4(0x0a000100 + uint32(f)), SrcPort: 1000, DstPort: 80},
					DetectedAt: at,
				})
			}
		}
		st = p.Stats()
		admitted = ad.Stats().Admitted
		if st.Forwarded != admitted {
			b.Fatalf("forwarded %d != admitted %d", st.Forwarded, admitted)
		}
	}
	b.ReportMetric(float64(st.Received), "alerts/op")
	b.ReportMetric(float64(st.Deduped+st.RateLimited), "suppressed/op")
	b.ReportMetric(float64(admitted), "admitted/op")
}

// BenchmarkTraceOverhead measures what always-on tracing costs one in-memory
// red-lights diagnosis: the untraced arm runs with Analyzer.DisableTracing
// set, the traced arm with the default recorder wired through the rpc.Clock.
// The span count is deterministic (root + one span per charged phase, the
// same every run — the drift-gated assertion that tracing is an observer of
// the virtual clock, never a participant). Tracing overhead lands within
// noise of the untraced arm on the pinned 1-CPU runner (≤5% ns/op).
func BenchmarkTraceOverhead(b *testing.B) {
	s, err := cluster.BuildScenario("redlights", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Testbed.Close()
	q, err := s.Query()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"untraced", true}, {"traced", false}} {
		b.Run(mode.name, func(b *testing.B) {
			s.Testbed.Analyzer.DisableTracing = mode.disable
			defer func() { s.Testbed.Analyzer.DisableTracing = false }()
			spans := 0
			for i := 0; i < b.N; i++ {
				rep, err := s.Testbed.Analyzer.Run(context.Background(), q)
				if err != nil {
					b.Fatal(err)
				}
				if mode.disable {
					if rep.Trace != nil {
						b.Fatal("untraced run produced a trace")
					}
				} else {
					spans = len(rep.Trace.Spans)
				}
			}
			if !mode.disable {
				b.ReportMetric(float64(spans), "spans")
			}
		})
	}
}
