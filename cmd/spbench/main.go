// Command spbench regenerates the paper's tables and figures as text
// artifacts.
//
// Usage:
//
//	spbench -list                 # enumerate experiments
//	spbench -fig fig7             # run one experiment
//	spbench -all                  # run everything (includes heavy sweeps)
//	spbench -all -quick           # skip the heavy sweeps
//	spbench -fig fig12 -o out.txt # write to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"switchpointer/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		fig   = flag.String("fig", "", "run a single experiment by ID (e.g. fig7)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "with -all: skip heavy experiments")
		out   = flag.String("o", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch {
	case *list:
		for _, e := range experiments.Registry() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Fprintf(w, "%-20s %s%s\n", e.ID, e.Desc, heavy)
		}
	case *fig != "":
		entry, err := experiments.Find(*fig)
		if err != nil {
			fatal(err)
		}
		runOne(w, entry)
	case *all:
		for _, e := range experiments.Registry() {
			if *quick && e.Heavy {
				fmt.Fprintf(w, "== %s: skipped (heavy; run without -quick) ==\n\n", e.ID)
				continue
			}
			runOne(w, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(w *os.File, e experiments.Entry) {
	//splint:wallclock bench harness reports real regeneration time alongside the virtual-time tables
	start := time.Now()
	res, err := e.Run()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", e.ID, err))
	}
	fmt.Fprint(w, res.Render())
	//splint:wallclock bench harness reports real regeneration time alongside the virtual-time tables
	fmt.Fprintf(w, "(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spbench:", err)
	os.Exit(1)
}
