// Command spsim runs one of the paper's workload scenarios on the simulated
// testbed and dumps the resulting timelines, alerts, and per-switch pointer
// statistics — the raw material behind the figures.
//
// Usage:
//
//	spsim -scenario toomuch -m 8
//	spsim -scenario redlights
//	spsim -scenario cascades -induce
//	spsim -scenario loadimbalance -n 16
package main

import (
	"flag"
	"fmt"
	"os"

	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/transport"
)

func main() {
	var (
		name   = flag.String("scenario", "toomuch", "toomuch | redlights | cascades | loadimbalance")
		m      = flag.Int("m", 8, "toomuch: UDP flows per burst batch")
		micro  = flag.Bool("microburst", false, "toomuch: FIFO microburst variant")
		induce = flag.Bool("induce", true, "cascades: induce the cascade")
		n      = flag.Int("n", 8, "loadimbalance: number of flows/servers")
	)
	flag.Parse()

	switch *name {
	case "toomuch":
		s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: *m, Microburst: *micro})
		check(err)
		s.Testbed.Run(110 * simtime.Millisecond)
		fmt.Printf("scenario: too much traffic (m=%d, microburst=%v)\n", *m, *micro)
		dumpMeter("victim TCP flow at destination", s.VictimMeter, 100)
		dumpAlerts(s.Testbed)
	case "redlights":
		s, err := scenario.NewRedLights(scenario.Options{})
		check(err)
		s.Testbed.Run(30 * simtime.Millisecond)
		fmt.Println("scenario: too many red lights")
		dumpMeter("victim at destination F", s.MeterAtF, 12)
		fmt.Printf("victim TCP timeouts: %d\n", s.Sender.Timeouts)
		dumpAlerts(s.Testbed)
	case "cascades":
		s, err := scenario.NewCascades(*induce, scenario.Options{})
		check(err)
		s.Testbed.Run(200 * simtime.Millisecond)
		fmt.Printf("scenario: traffic cascades (induced=%v)\n", *induce)
		dumpMeter("flow B-D (high)", s.MeterBD, 40)
		dumpMeter("flow A-F (mid)", s.MeterAF, 40)
		dumpMeter("flow C-E (low, 2MB TCP)", s.MeterCE, 40)
		fmt.Printf("C-E completed at %v\n", s.SenderCE.CompletedAt)
		dumpAlerts(s.Testbed)
	case "loadimbalance":
		s, err := scenario.NewLoadImbalance(*n, scenario.Options{})
		check(err)
		s.Testbed.Run(s.MaxFlowDuration() + 100*simtime.Millisecond)
		fmt.Printf("scenario: load imbalance (%d flows)\n", *n)
		for flow, size := range s.Flows {
			rec, ok := s.Testbed.HostAgents[flow.Dst].Store.Lookup(flow)
			if !ok {
				fmt.Printf("  %v intended=%dB NOT RECORDED\n", flow, size)
				continue
			}
			fmt.Printf("  %v intended=%dB received=%dB link=%d\n", flow, size, rec.Bytes, rec.TagLink)
		}
		dumpPointerStats(s.Testbed)
	default:
		fmt.Fprintf(os.Stderr, "spsim: unknown scenario %q\n", *name)
		os.Exit(2)
	}
}

func dumpMeter(label string, m *transport.Meter, buckets int) {
	fmt.Printf("%s (Gbps per ms):\n  ", label)
	for i := 0; i < buckets; i++ {
		fmt.Printf("%.2f ", m.GbpsAt(i))
		if (i+1)%20 == 0 {
			fmt.Print("\n  ")
		}
	}
	fmt.Println()
}

func dumpAlerts(tb *scenario.Testbed) {
	fmt.Printf("alerts raised: %d\n", len(tb.Alerts))
	for _, a := range tb.Alerts {
		fmt.Printf("  [%v] %s %v: %.2f→%.2f Gbps (%d path tuples)\n",
			a.DetectedAt, a.Kind, a.Flow, a.PrevGbps, a.CurGbps, len(a.Tuples))
	}
}

func dumpPointerStats(tb *scenario.Testbed) {
	fmt.Println("per-switch pointer statistics:")
	for _, ag := range tb.SwitchAgents {
		count, bytes := ag.Pointer().Pushes()
		fmt.Printf("  %s: touches=%d memory=%dB pushes=%d (%dB to control plane)\n",
			ag.Switch().NodeName(), ag.Pointer().Touches(), ag.MemoryBytes(), count, bytes)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsim:", err)
		os.Exit(1)
	}
}
