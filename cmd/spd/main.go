// Command spd is the SwitchPointer daemon: one binary that runs each role
// of a deployed cluster — host agents, switch agents, and the analyzer
// service — over the JSON/HTTP wire binding, so a whole diagnosis runs as a
// distributed system (the paper's flask topology, minus flask).
//
// Every daemon rebuilds the named deterministic scenario and plays it to
// its horizon, so separate processes agree byte-for-byte on all agent
// state; each then serves its own slice of the cluster:
//
//	spd host     -scenario redlights -listen 127.0.0.1:7641
//	spd switch   -scenario redlights -listen 127.0.0.1:7642
//	spd analyzer -scenario redlights -listen 127.0.0.1:7643 \
//	             -hosts http://127.0.0.1:7641 -switches http://127.0.0.1:7642
//	spd wait     -url http://127.0.0.1:7643/healthz -timeout 30s
//
// The host daemon serves every host agent under /hosts/<ip>/ (the
// rpc.NewHostHandler routes below it) and the switch daemon every switch
// agent under /switches/<id>/. The analyzer daemon reaches both only over
// HTTP (analyzer.RemoteDirectory + analyzer.RemoteHosts) and exposes the
// service plane: POST /diagnose (a cluster.QueryEnvelope, answered with the
// wire-form report), GET /stats (admission counters), GET /healthz.
// Concurrent queries are bounded by the admission controller
// (-max-inflight/-max-queue/-queue-wait); overflow queues FIFO with
// per-alert-kind priority, and rejected/expired queries map to HTTP 429/503.
//
// Point spctl at a running analyzer with `spctl -problem redlights -remote
// http://127.0.0.1:7643`. All daemons shut down gracefully on
// SIGINT/SIGTERM. `spd wait` polls a /healthz URL until the daemon reports
// state "live" — the readiness gate scripts use.
//
// State sync: every daemon serves the statesync plane — hosts expose GET
// /hosts/<ip>/snapshot (epoch-range-addressable gob segments) and POST
// /hosts/<ip>/ingest (live record feed), switches GET
// /switches/<id>/snapshot (pointer + control store + MPH) — and a fresh
// daemon started with -bootstrap-from <peer-url> absorbs a live peer's
// state instead of replaying the scenario, serving queries the whole time
// (readiness syncing → live at /healthz).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"switchpointer/internal/buildinfo"
	"switchpointer/internal/cluster"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/metrics"
	"switchpointer/internal/pointer"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/statesync"
	"switchpointer/internal/store"
	"switchpointer/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "host", "switch", "analyzer":
		err = serveCmd(cmd, args)
	case "wait":
		err = waitCmd(args)
	case "-version", "--version", "version":
		fmt.Printf("spd %s %s\n", buildinfo.Version, buildinfo.Go())
		return
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "spd: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `spd — the SwitchPointer cluster daemon

  spd host     -scenario NAME -listen ADDR [-m M -n N]
               [-bootstrap-from URL] [-hot-epochs H -max-records R -cold-dir DIR]
               [-compact-min-run N -compact-max-bytes B]
               [-tier-max-age E -tier-archive-dir DIR]
  spd switch   -scenario NAME -listen ADDR [-m M -n N] [-bootstrap-from URL]
  spd analyzer -scenario NAME -listen ADDR -hosts URL -switches URL
               [-m M -n N -max-inflight K -max-queue Q -queue-wait D]
               [-alert-pipeline -alert-dedup W -alert-rate R -alert-burst B]
  spd wait     -url URL [-timeout D]

Every role serves GET /metrics (Prometheus text) and GET /stats (JSON)
alongside its query plane. With -alert-pipeline, the analyzer enriches,
deduplicates, and rate-limits the scenario's raised alerts before admitting
the surviving diagnoses.

With -bootstrap-from, the daemon does NOT replay the scenario: it serves
immediately in the "syncing" readiness state, pulls the peer daemon's
state-sync snapshots in the background, and flips /healthz to "live" once
the bootstrap lands (spd wait polls for exactly that). Host daemons also
accept a live ingest feed at POST /hosts/<ip>/ingest throughout.

Scenarios: %v
`, cluster.ScenarioNames())
}

// serveCmd runs one daemon role to completion (SIGINT/SIGTERM).
func serveCmd(role string, args []string) error {
	fs := flag.NewFlagSet("spd "+role, flag.ExitOnError)
	var (
		scenarioName = fs.String("scenario", "redlights", "deterministic scenario to rebuild and serve")
		listen       = fs.String("listen", "127.0.0.1:0", "listen address")
		m            = fs.Int("m", 0, "burst flows (priority/microburst; 0 = default)")
		n            = fs.Int("n", 0, "servers (loadimbalance/topk; 0 = default)")
		ptrBackend   = fs.String("pointer-backend", "adaptive", "pointer slot backend: adaptive, dense, or bloom (must match across the cluster's daemons)")
		hostsURL     = fs.String("hosts", "", "analyzer: base URL of the host daemon")
		switchesURL  = fs.String("switches", "", "analyzer: base URL of the switch daemon")
		maxInflight  = fs.Int("max-inflight", 0, "analyzer: concurrent diagnosis bound (0 = default 4)")
		maxQueue     = fs.Int("max-queue", 0, "analyzer: admission queue depth (0 = default 64)")
		queueWait    = fs.Duration("queue-wait", 0, "analyzer: max queue wait before ErrExpired (0 = unbounded)")
		alertPipe    = fs.Bool("alert-pipeline", false, "analyzer: run the alert enrichment/dedup pipeline over the scenario's raised alerts, forwarding survivors into admission")
		alertDedup   = fs.Duration("alert-dedup", time.Second, "analyzer: pipeline dedup window on the alerts' virtual clock")
		alertRate    = fs.Float64("alert-rate", 0, "analyzer: sustained pipeline forward rate per virtual second (0 = unlimited)")
		alertBurst   = fs.Int("alert-burst", 0, "analyzer: pipeline token-bucket burst (default 1 when -alert-rate is set)")
		bootstrap    = fs.String("bootstrap-from", "", "host/switch: base URL of a live peer daemon to bootstrap state from (skips scenario replay)")
		hotEpochs    = fs.Int("hot-epochs", 0, "host: retention age bound in epochs (0 = no age eviction)")
		maxRecords   = fs.Int("max-records", 0, "host: retention resident-record cap (0 = unbounded)")
		coldDir      = fs.String("cold-dir", "", "host: directory for the evicted-segment logs (empty = in-memory logs when retention is on)")
		compactRun   = fs.Int("compact-min-run", 0, "host: compact runs of at least this many small cold segments (0 = no compaction)")
		compactBytes = fs.Int("compact-max-bytes", 0, "host: segments larger than this never join a compaction run (0 = default 1 MiB)")
		tierMaxAge   = fs.Int("tier-max-age", 0, "host: tier out cold segments older than this many epochs (0 = no tiering)")
		tierArchive  = fs.String("tier-archive-dir", "", "host: archive tiered payloads here (empty = delete them)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	backend, err := pointer.ParseBackend(*ptrBackend)
	if err != nil {
		return err
	}
	s, err := cluster.BuildScenarioBackend(*scenarioName, *m, *n, backend)
	if err != nil {
		return err
	}
	// Retention flags must never be silently inert: reject every
	// combination that would leave the operator believing the store is
	// bounded (or a cold log armed) when nothing runs.
	retentionFlags := *hotEpochs > 0 || *maxRecords > 0 || *coldDir != ""
	coldTierFlags := *compactRun > 0 || *compactBytes > 0 || *tierMaxAge > 0 || *tierArchive != ""
	if coldTierFlags {
		if role != "host" {
			return errors.New("-compact-*/-tier-* apply to the host role only")
		}
		if !retentionFlags {
			return errors.New("-compact-*/-tier-* need retention armed (-hot-epochs/-max-records): without eviction there is no cold log to maintain")
		}
		if *compactBytes > 0 && *compactRun <= 0 {
			return errors.New("-compact-max-bytes needs -compact-min-run: compaction is off without a run length")
		}
		if *tierArchive != "" && *tierMaxAge <= 0 {
			return errors.New("-tier-archive-dir needs -tier-max-age: tiering is off without an age bound")
		}
	}
	if retentionFlags {
		if role != "host" {
			return errors.New("-hot-epochs/-max-records/-cold-dir apply to the host role only")
		}
		if *bootstrap != "" {
			// The retention sweep runs on the scenario-replay engine timer;
			// a bootstrapped daemon never replays.
			return errors.New("-hot-epochs/-max-records/-cold-dir cannot combine with -bootstrap-from: retention sweeps run during scenario replay, which -bootstrap-from skips")
		}
		if *hotEpochs <= 0 && *maxRecords <= 0 {
			return errors.New("-cold-dir needs -hot-epochs and/or -max-records: without an eviction bound nothing is ever flushed to the cold log")
		}
	}
	if role == "host" && retentionFlags {
		// Retention must be armed before the scenario plays: the sweep runs
		// on the engine timer during the replay, so the daemon comes up with
		// a bounded resident set and an indexed cold log per host — queries
		// past the hot window transparently consult it (cold read-back).
		// Compaction and tiering ride the same weak timer, so the cold log
		// stays merged and age-bounded as evictions accumulate.
		net := s.Testbed.Net
		for ip, ag := range s.Testbed.HostAgents {
			dir := ""
			if *coldDir != "" {
				dir = filepath.Join(*coldDir, ip.String())
			}
			seglog, err := statesync.NewSegmentLog(dir)
			if err != nil {
				return err
			}
			ag.EnableRetention(store.Retention{
				HotEpochs:  *hotEpochs,
				Alpha:      s.Testbed.Opt.Alpha,
				MaxRecords: *maxRecords,
				Cold:       seglog,
			}, 0)
			logErr := func(err error) { fmt.Fprintln(os.Stderr, "spd host: cold-tier sweep:", err) }
			if *compactRun > 0 {
				c := &statesync.Compactor{
					Log:     seglog,
					Policy:  statesync.CompactPolicy{MinRun: *compactRun, MaxSegmentBytes: *compactBytes},
					OnError: logErr,
				}
				net.Engine.EveryWeak(10*simtime.Millisecond, func() {
					_, _ = c.Run(context.Background())
				})
			}
			if *tierMaxAge > 0 {
				archive := ""
				if *tierArchive != "" {
					archive = filepath.Join(*tierArchive, ip.String())
				}
				t := &statesync.Tier{
					Log: seglog,
					Policy: statesync.TierPolicy{
						MaxAgeEpochs: *tierMaxAge,
						Alpha:        s.Testbed.Opt.Alpha,
						ArchiveDir:   archive,
					},
					OnError: logErr,
				}
				net.Engine.EveryWeak(10*simtime.Millisecond, func() {
					_, _ = t.Sweep(context.Background(), net.Now())
				})
			}
		}
		fmt.Fprintf(os.Stderr, "spd host: retention armed (hot-epochs %d, max-records %d, cold-dir %q, compact-min-run %d, tier-max-age %d)\n",
			*hotEpochs, *maxRecords, *coldDir, *compactRun, *tierMaxAge)
	}

	// With -bootstrap-from the scenario is NOT replayed: the daemon serves
	// immediately in the syncing state and absorbs the peer's snapshots in
	// the background; without it, state comes from the deterministic replay
	// and the daemon is live from the first request.
	// The alert pipeline consumes the scenario's own raised alerts, so the
	// subscription must exist before the replay plays them out. The buffer
	// is sized to hold any scenario's full alert volume.
	var alerts <-chan hostagent.Alert
	if *alertPipe {
		if role != "analyzer" {
			return errors.New("-alert-pipeline applies to the analyzer role only")
		}
		alerts = s.Testbed.SubscribeBuffered(hostagent.AlertFilter{}, 4096)
	}

	var rd *statesync.Readiness
	if *bootstrap != "" {
		if role == "analyzer" {
			return errors.New("analyzer holds no telemetry; -bootstrap-from applies to host/switch roles")
		}
		rd = statesync.NewReadiness(false)
		fmt.Fprintf(os.Stderr, "spd %s: bootstrapping from %s (serving in syncing state)\n", role, *bootstrap)
	} else {
		end := s.Run()
		fmt.Fprintf(os.Stderr, "spd %s: scenario %q played to %v\n", role, *scenarioName, end)
	}

	// Every role keeps a bounded flight recorder of the traces it touched,
	// served at GET /traces (+ /traces/<id>).
	fr := trace.NewFlightRecorder(role, 0)

	var handler http.Handler
	switch role {
	case "host":
		reg := cluster.HostRegistry(s.Testbed, rd)
		reg.Uptime("spd_process_uptime_seconds", "Seconds since the daemon process started.")
		registerBuildInfo(reg)
		handler = cluster.HostMuxWith(s.Testbed, rd, reg, fr)
		fmt.Fprintf(os.Stderr, "spd host: serving %d host agents under /hosts/<ip>/\n", len(s.Testbed.HostAgents))
	case "switch":
		reg := cluster.SwitchRegistry(s.Testbed, rd)
		reg.Uptime("spd_process_uptime_seconds", "Seconds since the daemon process started.")
		registerBuildInfo(reg)
		handler = cluster.SwitchMuxWith(s.Testbed, rd, reg, fr)
		fmt.Fprintf(os.Stderr, "spd switch: serving %d switch agents under /switches/<id>/\n", len(s.Testbed.SwitchAgents))
	case "analyzer":
		if *hostsURL == "" || *switchesURL == "" {
			return errors.New("analyzer role needs -hosts and -switches URLs")
		}
		a, err := cluster.NewRemoteAnalyzer(s.Testbed,
			cluster.HostURLs(*hostsURL, s.Testbed),
			cluster.SwitchURLs(*switchesURL, s.Testbed), nil)
		if err != nil {
			return err
		}
		ad := cluster.NewAdmission(a, cluster.AdmissionConfig{
			MaxInFlight: *maxInflight,
			MaxQueued:   *maxQueue,
			QueueWait:   *queueWait,
		})
		ad.Flight = fr
		fr.SetPeers(map[string]string{"hosts": *hostsURL, "switches": *switchesURL})
		reg := cluster.AnalyzerRegistry(ad)
		reg.Uptime("spd_process_uptime_seconds", "Seconds since the daemon process started.")
		registerBuildInfo(reg)
		if alerts != nil {
			pipe := cluster.NewAlertPipeline(s.Testbed.Topo, cluster.PipelineConfig{
				DedupWindow: simtime.Time(*alertDedup),
				Rate:        *alertRate,
				Burst:       *alertBurst,
			}, func(ea cluster.EnrichedAlert) {
				go func() {
					if _, err := ad.Run(context.Background(), ea.Query); err != nil {
						fmt.Fprintf(os.Stderr, "spd analyzer: pipeline diagnosis (%s): %v\n", ea.Query.Name(), err)
					}
				}()
			})
			pipe.Flight = fr
			pipe.Register(reg)
			go pipe.Run(context.Background(), alerts)
			fmt.Fprintf(os.Stderr, "spd analyzer: alert pipeline armed (dedup %v, rate %g/s, burst %d)\n",
				*alertDedup, *alertRate, *alertBurst)
		}
		handler = cluster.NewAnalyzerHandlerWith(ad, reg, fr)
		cfg := ad.Config()
		fmt.Fprintf(os.Stderr, "spd analyzer: /diagnose ready (max %d in flight, %d queued, wait %v)\n",
			cfg.MaxInFlight, cfg.MaxQueued, cfg.QueueWait)
	}
	if rd != nil {
		go runBootstrap(role, *bootstrap, s.Testbed, rd, fr)
	}
	return serve(*listen, handler, role)
}

// registerBuildInfo adds the constant spd_build_info gauge every role serves:
// value 1, labeled with the binary's version identity, so dashboards can
// detect version skew across a trio without parsing /healthz.
func registerBuildInfo(reg *metrics.Registry) {
	reg.GaugeFunc("spd_build_info", "Always 1, labeled with the binary's version and toolchain.",
		[]string{"version", "goversion"}, func(emit metrics.Emit) {
			emit(1, buildinfo.Version, buildinfo.Go())
		})
}

// runBootstrap absorbs the peer daemon's snapshots in the background while
// this daemon is already serving (queries answer from whatever has landed),
// then flips readiness to live. A failed bootstrap leaves the daemon in the
// syncing state — `spd wait` keeps waiting, which is the honest failure
// mode.
func runBootstrap(role, peer string, tb *scenario.Testbed, rd *statesync.Readiness, fr *trace.FlightRecorder) {
	ctx := context.Background()
	if err := cluster.WaitReady(ctx, peer+"/healthz", 60*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "spd %s: bootstrap peer never went live: %v\n", role, err)
		return
	}
	b := &statesync.Bootstrapper{Readiness: rd}
	//splint:wallclock daemon progress log: real elapsed bootstrap time, never a metric
	start := time.Now()
	// The bootstrap leaves a single-span trace in the flight recorder: pure
	// wall-clock work (no virtual clock runs here), so the duration rides the
	// exempt wall annotation and the span's virtual times stay zero.
	recordBootstrap := func(segs, recs int64) {
		if fr == nil {
			return
		}
		//splint:wallclock daemon progress log: real elapsed bootstrap time, never a metric
		wall := time.Since(start)
		fr.Record(trace.NewID("bootstrap", role, peer), trace.Span{
			ID: "0", Name: "bootstrap", Role: role, Wall: wall.Nanoseconds(),
			Attrs: []trace.Attr{
				{Key: "segments", Value: fmt.Sprintf("%d", segs)},
				{Key: "records", Value: fmt.Sprintf("%d", recs)},
			},
		})
	}
	switch role {
	case "host":
		segs, recs, err := cluster.BootstrapHosts(ctx, b, peer, tb)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spd host: bootstrap failed: %v\n", err)
			return
		}
		recordBootstrap(int64(segs), int64(recs))
		fmt.Fprintf(os.Stderr, "spd host: bootstrap complete (%d segments, %d records, %v); live\n",
			//splint:wallclock daemon progress log: real elapsed bootstrap time, never a metric
			segs, recs, time.Since(start).Round(time.Millisecond))
	case "switch":
		if err := cluster.BootstrapSwitches(ctx, b, peer, tb); err != nil {
			fmt.Fprintf(os.Stderr, "spd switch: bootstrap failed: %v\n", err)
			return
		}
		recordBootstrap(0, 0)
		//splint:wallclock daemon progress log: real elapsed bootstrap time, never a metric
		fmt.Fprintf(os.Stderr, "spd switch: bootstrap complete (%v); live\n", time.Since(start).Round(time.Millisecond))
	}
	rd.SetLive()
}

// serve runs an HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully (in-flight requests get 5 s to finish). The listener is bound
// before the "listening on" line prints, and the line carries the ACTUAL
// bound address — so `-listen 127.0.0.1:0` picks a free ephemeral port and
// scripts scrape the address from stderr (what the verify smoke does,
// avoiding fixed-port collisions).
func serve(addr string, handler http.Handler, role string) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	fmt.Fprintf(os.Stderr, "spd %s: listening on %s\n", role, ln.Addr())
	go func() {
		errc <- srv.Serve(ln)
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "spd %s: shutting down\n", role)
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}

// waitCmd polls a /healthz URL until the daemon reports readiness state
// "live" (a bootstrapping daemon answers "syncing" until its peer snapshot
// lands).
func waitCmd(args []string) error {
	fs := flag.NewFlagSet("spd wait", flag.ExitOnError)
	var (
		url     = fs.String("url", "", "health URL to poll (e.g. http://127.0.0.1:7643/healthz)")
		timeout = fs.Duration("timeout", 30*time.Second, "give up after this long")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return errors.New("wait needs -url")
	}
	return cluster.WaitReady(context.Background(), *url, *timeout)
}
