// Command spctl reproduces an operator's debugging session: it runs a
// scenario, waits for the host trigger, and invokes the analyzer the way §3's
// worked example describes — printing the pointer retrievals, the pruned
// search radius, the consulted hosts, and the conclusion with its timing
// breakdown.
//
// Usage:
//
//	spctl -problem priority -m 8
//	spctl -problem microburst -m 16
//	spctl -problem redlights
//	spctl -problem cascade
//	spctl -problem loadimbalance -n 16
//	spctl -problem topk -n 32
package main

import (
	"flag"
	"fmt"
	"os"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

func main() {
	var (
		problem = flag.String("problem", "priority", "priority | microburst | redlights | cascade | loadimbalance | topk")
		m       = flag.Int("m", 8, "burst flows (priority/microburst)")
		n       = flag.Int("n", 16, "servers (loadimbalance/topk)")
	)
	flag.Parse()

	switch *problem {
	case "priority", "microburst":
		s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{
			M: *m, Microburst: *problem == "microburst"})
		check(err)
		tb := s.Testbed
		tb.Run(110 * simtime.Millisecond)
		alert, ok := tb.AlertFor(s.Victim)
		if !ok {
			fail("no trigger fired — nothing to debug")
		}
		fmt.Printf("trigger: %s on %v at %v (%.2f → %.2f Gbps)\n",
			alert.Kind, alert.Flow, alert.DetectedAt, alert.PrevGbps, alert.CurGbps)
		printDiagnosis(tb.Analyzer.DiagnoseContention(alert))
	case "redlights":
		s, err := scenario.NewRedLights(scenario.Options{})
		check(err)
		tb := s.Testbed
		tb.Run(30 * simtime.Millisecond)
		alert, ok := tb.AlertFor(s.Victim)
		if !ok {
			fail("no trigger fired")
		}
		fmt.Printf("trigger: %s on %v at %v\n", alert.Kind, alert.Flow, alert.DetectedAt)
		printDiagnosis(tb.Analyzer.DiagnoseContention(alert))
	case "cascade":
		s, err := scenario.NewCascades(true, scenario.Options{})
		check(err)
		tb := s.Testbed
		tb.Run(60 * simtime.Millisecond)
		alert, ok := tb.AlertFor(s.FlowCE)
		if !ok {
			fail("no trigger fired")
		}
		fmt.Printf("trigger: %s on %v at %v\n", alert.Kind, alert.Flow, alert.DetectedAt)
		d := tb.Analyzer.DiagnoseCascade(alert)
		printDiagnosis(d)
		if len(d.Cascade) > 1 {
			fmt.Println("cascade chain:")
			for i, f := range d.Cascade {
				fmt.Printf("  %d. %v\n", i, f)
			}
		}
	case "loadimbalance":
		s, err := scenario.NewLoadImbalance(*n, scenario.Options{})
		check(err)
		tb := s.Testbed
		tb.Run(s.MaxFlowDuration() + 100*simtime.Millisecond)
		ag := tb.SwitchAgents[s.Suspect.NodeID()]
		nowEpoch := ag.LocalEpochAt(tb.Net.Now())
		rep := tb.Analyzer.DiagnoseLoadImbalance(s.Suspect.NodeID(),
			simtime.EpochRange{Lo: nowEpoch - 99, Hi: nowEpoch}, tb.Net.Now())
		fmt.Printf("suspect switch: %s\n", s.Suspect.NodeName())
		for _, l := range rep.Links {
			fmt.Printf("  link %d: %d flows, sizes %d..%d B\n", l.Link, l.Flows, l.Min(), l.Max())
		}
		fmt.Printf("conclusion: %s\n", rep.Conclusion)
		fmt.Printf("hosts contacted: %d, diagnosis time: %v\n", rep.HostsContacted, rep.Clock.Total())
	case "topk":
		s, err := scenario.NewTopKWorkload(*n, 96, scenario.Options{})
		check(err)
		tb := s.Testbed
		tb.Run(50 * simtime.Millisecond)
		window := simtime.EpochRange{Lo: 0, Hi: 10}
		sp := tb.Analyzer.TopK(s.Queried.NodeID(), 100, window, analyzer.ModeSwitchPointer, tb.Net.Now())
		pd := tb.Analyzer.TopK(s.Queried.NodeID(), 100, window, analyzer.ModePathDump, tb.Net.Now())
		fmt.Printf("top-100 at %s: %d flows found\n", s.Queried.NodeName(), len(sp.Flows))
		for i, fb := range sp.Flows {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(sp.Flows)-5)
				break
			}
			fmt.Printf("  %2d. %v — %d B\n", i+1, fb.Flow, fb.Bytes)
		}
		fmt.Printf("SwitchPointer: %d hosts, %v\n", sp.HostsContacted, sp.Clock.Total())
		fmt.Printf("PathDump:      %d hosts, %v\n", pd.HostsContacted, pd.Clock.Total())
	default:
		fmt.Fprintf(os.Stderr, "spctl: unknown problem %q\n", *problem)
		os.Exit(2)
	}
}

func printDiagnosis(d *analyzer.Diagnosis) {
	fmt.Printf("diagnosis: %s\n", d.Kind)
	fmt.Printf("conclusion: %s\n", d.Conclusion)
	fmt.Printf("search radius: %d pointer hosts, %d pruned, %d contacted\n",
		d.PointerHosts, d.PrunedHosts, d.HostsContacted)
	for _, c := range d.Culprits {
		fmt.Printf("  culprit: %v prio=%d bytes=%d at switch %d (telemetry from %v)\n",
			c.Flow, c.Priority, c.Bytes, c.Switch, c.Host)
	}
	fmt.Println("timing breakdown:")
	for _, p := range d.Clock.Phases() {
		fmt.Printf("  %-18s %v\n", p.Name, p.Duration)
	}
	fmt.Printf("  %-18s %v\n", "TOTAL", d.Total())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spctl:", err)
		os.Exit(1)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "spctl:", msg)
	os.Exit(1)
}
