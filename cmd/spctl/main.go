// Command spctl reproduces an operator's debugging session: it runs a
// scenario, waits on the testbed's alert stream, and executes the matching
// query through the analyzer's unified dispatch the way §3's worked example
// describes — printing the pointer retrievals, the pruned search radius, the
// consulted hosts, and the conclusion with its timing breakdown.
//
// Usage:
//
//	spctl -problem priority -m 8
//	spctl -problem microburst -m 16
//	spctl -problem redlights
//	spctl -problem cascade
//	spctl -problem loadimbalance -n 16
//	spctl -problem topk -n 32
//	spctl -problem priority -timeout 50ms   # bound the query in wall time
//
// With -remote, spctl becomes a thin client of a running `spd analyzer`
// service: it rebuilds the same deterministic scenario locally only to
// derive the query (trigger alert, suspect switch, epoch window), then
// submits it over the wire as a cluster.QueryEnvelope and prints the
// returned wire-form report — the whole diagnosis executes on the remote
// cluster:
//
//	spctl -problem redlights -remote http://127.0.0.1:7643
//
// With -metrics, spctl instead scrapes a daemon's Prometheus /metrics
// endpoint, parses the exposition text, and pretty-prints every family with
// its samples — a quick operator's view of any spd role's self-telemetry:
//
//	spctl -metrics http://127.0.0.1:7641
//
// With -trace, spctl fetches a diagnosis trace from a running analyzer's
// flight recorder (GET /traces), walks the analyzer's advertised peers to
// collect the host/switch daemons' child spans, merges the views by span ID,
// and pretty-prints the virtual-time span tree (add -json for the canonical
// merged JSON — byte-identical across repeated fetches):
//
//	spctl -trace http://127.0.0.1:7643 [sp-0123456789abcdef]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/buildinfo"
	"switchpointer/internal/cluster"
	"switchpointer/internal/metrics"
	"switchpointer/internal/trace"
)

func main() {
	var (
		problem  = flag.String("problem", "priority", "priority | microburst | redlights | cascade | loadimbalance | topk")
		m        = flag.Int("m", 8, "burst flows (priority/microburst)")
		n        = flag.Int("n", 16, "servers (loadimbalance/topk)")
		timeout  = flag.Duration("timeout", 0, "wall-clock deadline for the analyzer query (0 = none)")
		remote   = flag.String("remote", "", "analyzer service URL — submit the query to a running `spd analyzer` instead of simulating in-process")
		scrape   = flag.String("metrics", "", "daemon URL — scrape and pretty-print its Prometheus /metrics instead of running a query")
		traceURL = flag.String("trace", "", "analyzer service URL — fetch, merge, and print a diagnosis trace from the cluster's flight recorders (optional positional arg: trace ID; defaults to the most recent)")
		asJSON   = flag.Bool("json", false, "with -trace: print the canonical merged trace as JSON instead of a tree")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("spctl %s %s\n", buildinfo.Version, buildinfo.Go())
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *traceURL != "" {
		runTrace(ctx, *traceURL, flag.Arg(0), *asJSON)
		return
	}

	if *scrape != "" {
		runMetrics(ctx, *scrape)
		return
	}

	if *remote != "" {
		runRemote(ctx, *remote, *problem, *m, *n)
		return
	}

	// Local mode uses the same scenario/query derivation as --remote and
	// the spd daemons (cluster.BuildScenario), so the two modes can never
	// diverge on horizons, windows, or parameters.
	s, err := cluster.BuildScenario(*problem, *m, *n)
	check(err)
	defer s.Testbed.Close()
	q, err := s.Query()
	check(err)

	switch *problem {
	case "priority", "microburst", "redlights", "cascade":
		alert, err := s.Alert()
		check(err)
		fmt.Printf("trigger: %s on %v at %v (%.2f → %.2f Gbps)\n",
			alert.Kind, alert.Flow, alert.DetectedAt, alert.PrevGbps, alert.CurGbps)
		rep := run(ctx, s.Testbed.Analyzer, q)
		printReport(rep)
		if len(rep.Cascade) > 1 {
			fmt.Println("cascade chain:")
			for i, f := range rep.Cascade {
				fmt.Printf("  %d. %v\n", i, f)
			}
		}
	case "loadimbalance":
		rep := run(ctx, s.Testbed.Analyzer, q)
		fmt.Printf("suspect switch: %s\n", s.SwitchName)
		for _, l := range rep.Links {
			fmt.Printf("  link %d: %d flows, sizes %d..%d B\n", l.Link, l.Flows, l.Min(), l.Max())
		}
		fmt.Printf("conclusion: %s\n", rep.Conclusion)
		fmt.Printf("hosts contacted: %d, diagnosis time: %v\n", rep.HostsContacted, rep.Total())
	case "topk":
		sp := run(ctx, s.Testbed.Analyzer, q)
		pdq := q.(analyzer.TopKQuery)
		pdq.Mode = analyzer.ModePathDump
		pd := run(ctx, s.Testbed.Analyzer, pdq)
		fmt.Printf("top-100 at %s: %d flows found\n", s.SwitchName, len(sp.Flows))
		for i, fb := range sp.Flows {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(sp.Flows)-5)
				break
			}
			fmt.Printf("  %2d. %v — %d B\n", i+1, fb.Flow, fb.Bytes)
		}
		fmt.Printf("SwitchPointer: %d hosts, %v\n", sp.HostsContacted, sp.Total())
		fmt.Printf("PathDump:      %d hosts, %v\n", pd.HostsContacted, pd.Total())
	}
}

// runMetrics scrapes a daemon's /metrics endpoint, parses the Prometheus
// exposition text, and pretty-prints every family: TYPE, HELP, and each
// sample with its labels. Exits non-zero on unreachable daemons or
// malformed exposition text.
func runMetrics(ctx context.Context, url string) {
	if !strings.HasSuffix(url, "/metrics") {
		url = strings.TrimRight(url, "/") + "/metrics"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	check(err)
	resp, err := http.DefaultClient.Do(req)
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		check(fmt.Errorf("GET %s: status %d", url, resp.StatusCode))
	}
	fams, err := metrics.ParseText(io.LimitReader(resp.Body, 8<<20))
	check(err)
	fmt.Printf("# %s — %d metric families\n", url, len(fams))
	for _, f := range fams {
		fmt.Printf("\n%s (%s) — %s\n", f.Name, f.Type, f.Help)
		for _, s := range f.Samples {
			var labels []string
			for _, l := range s.Labels {
				labels = append(labels, fmt.Sprintf("%s=%q", l[0], l[1]))
			}
			name := s.Name
			if len(labels) > 0 {
				name += "{" + strings.Join(labels, ",") + "}"
			}
			fmt.Printf("  %-60s %g\n", name, s.Value)
		}
	}
}

// runTrace fetches one diagnosis trace from a running analyzer's flight
// recorder, walks the index's advertised peers for the host/switch daemons'
// child spans, merges the per-role views, and prints the span tree (or, with
// -json, the canonical merged JSON the byte-equality gates compare). An empty
// id selects the most recently recorded trace.
func runTrace(ctx context.Context, url, id string, asJSON bool) {
	hc := http.DefaultClient
	base := strings.TrimRight(url, "/")
	idx, err := cluster.FetchTraceIndex(ctx, hc, base)
	check(err)
	if id == "" {
		if len(idx.Traces) == 0 {
			check(fmt.Errorf("no traces recorded at %s", base))
		}
		id = idx.Traces[len(idx.Traces)-1]
	}
	bases := []string{base}
	roles := make([]string, 0, len(idx.Peers))
	for r := range idx.Peers {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	for _, r := range roles {
		bases = append(bases, strings.TrimRight(idx.Peers[r], "/"))
	}
	var views []trace.Trace
	for _, b := range bases {
		t, ok, err := cluster.FetchTrace(ctx, hc, b, id)
		check(err)
		if ok {
			views = append(views, t)
		}
	}
	if len(views) == 0 {
		check(fmt.Errorf("trace %s not found on any daemon", id))
	}
	merged := cluster.MergeTraces(id, views...)
	if asJSON {
		data, err := json.MarshalIndent(merged.Canonical(), "", "  ")
		check(err)
		fmt.Println(string(data))
		return
	}
	printTraceTree(merged)
}

// printTraceTree renders a merged trace as an indented tree. Spans arrive in
// canonical (Start, ID) order, so children print in virtual-time order;
// spans whose parent is absent (an evicted analyzer trace, say) print as
// roots so nothing is silently dropped.
func printTraceTree(t trace.Trace) {
	byID := make(map[string]trace.Span, len(t.Spans))
	children := make(map[string][]string)
	roleSet := make(map[string]bool)
	for _, s := range t.Spans {
		byID[s.ID] = s
		roleSet[s.Role] = true
	}
	var roots []string
	for _, s := range t.Spans {
		if _, ok := byID[s.Parent]; s.Parent != "" && ok {
			children[s.Parent] = append(children[s.Parent], s.ID)
		} else {
			roots = append(roots, s.ID)
		}
	}
	roles := make([]string, 0, len(roleSet))
	for r := range roleSet {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	fmt.Printf("trace %s — %d spans across %s\n", t.ID, len(t.Spans), strings.Join(roles, ", "))
	var walk func(id string, depth int)
	walk = func(id string, depth int) {
		s := byID[id]
		line := fmt.Sprintf("%s%s [%s] %s", strings.Repeat("  ", depth), s.ID, s.Role, s.Name)
		if s.End > s.Start {
			line += fmt.Sprintf("  %v → %v (%v)", s.Start, s.End, s.Duration())
		} else {
			line += fmt.Sprintf("  @ %v", s.Start)
		}
		for _, a := range s.Attrs {
			line += fmt.Sprintf("  %s=%s", a.Key, a.Value)
		}
		if s.Wall > 0 {
			line += fmt.Sprintf("  wall=%dns", s.Wall)
		}
		fmt.Println(line)
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// runRemote derives the problem's query from the locally rebuilt scenario
// and submits it to a running `spd analyzer` service.
func runRemote(ctx context.Context, url, problem string, m, n int) {
	s, err := cluster.BuildScenario(problem, m, n)
	check(err)
	q, err := s.Query()
	check(err)
	env, err := cluster.Envelope(q)
	check(err)
	fmt.Printf("submitting %s query to %s\n", q.Name(), url)
	rep, err := (&cluster.Client{BaseURL: url}).Diagnose(ctx, env)
	if err != nil && rep == nil {
		check(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spctl: remote query cut short: %v (partial report follows)\n", err)
	}
	printWireReport(rep)
}

// printWireReport renders a remote (wire-form) report the way printReport
// renders a local one, plus the kind-specific payloads.
func printWireReport(d *cluster.WireReport) {
	fmt.Printf("diagnosis: %s\n", d.Kind)
	fmt.Printf("conclusion: %s\n", d.Conclusion)
	fmt.Printf("search radius: %d pointer hosts, %d pruned, %d contacted\n",
		d.PointerHosts, d.PrunedHosts, d.HostsContacted)
	for _, c := range d.Culprits {
		fmt.Printf("  culprit: %v prio=%d bytes=%d at switch %d (telemetry from %v)\n",
			c.Flow, c.Priority, c.Bytes, c.Switch, c.Host)
	}
	if len(d.Cascade) > 1 {
		fmt.Println("cascade chain:")
		for i, f := range d.Cascade {
			fmt.Printf("  %d. %v\n", i, f)
		}
	}
	for _, l := range d.Links {
		fmt.Printf("  link %d: %d flows, sizes %d..%d B\n", l.Link, l.Flows, l.Min(), l.Max())
	}
	for i, fb := range d.Flows {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(d.Flows)-5)
			break
		}
		fmt.Printf("  %2d. %v — %d B\n", i+1, fb.Flow, fb.Bytes)
	}
	fmt.Println("timing breakdown:")
	for _, p := range d.Phases {
		fmt.Printf("  %-18s %v\n", p.Name, p.Duration)
	}
	fmt.Printf("  %-18s %v\n", "TOTAL", d.Total())
}

func run(ctx context.Context, a *analyzer.Analyzer, q analyzer.Query) *analyzer.Report {
	rep, err := a.Run(ctx, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spctl: query %s aborted: %v (partial report follows)\n", q.Name(), err)
	}
	return rep
}

func printReport(d *analyzer.Report) {
	fmt.Printf("diagnosis: %s\n", d.Kind)
	fmt.Printf("conclusion: %s\n", d.Conclusion)
	fmt.Printf("search radius: %d pointer hosts, %d pruned, %d contacted\n",
		d.PointerHosts, d.PrunedHosts, d.HostsContacted)
	for _, c := range d.Culprits {
		fmt.Printf("  culprit: %v prio=%d bytes=%d at switch %d (telemetry from %v)\n",
			c.Flow, c.Priority, c.Bytes, c.Switch, c.Host)
	}
	fmt.Println("timing breakdown:")
	for _, p := range d.Clock.Phases() {
		fmt.Printf("  %-18s %v\n", p.Name, p.Duration)
	}
	fmt.Printf("  %-18s %v\n", "TOTAL", d.Total())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spctl:", err)
		os.Exit(1)
	}
}
