// Command spctl reproduces an operator's debugging session: it runs a
// scenario, waits on the testbed's alert stream, and executes the matching
// query through the analyzer's unified dispatch the way §3's worked example
// describes — printing the pointer retrievals, the pruned search radius, the
// consulted hosts, and the conclusion with its timing breakdown.
//
// Usage:
//
//	spctl -problem priority -m 8
//	spctl -problem microburst -m 16
//	spctl -problem redlights
//	spctl -problem cascade
//	spctl -problem loadimbalance -n 16
//	spctl -problem topk -n 32
//	spctl -problem priority -timeout 50ms   # bound the query in wall time
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

func main() {
	var (
		problem = flag.String("problem", "priority", "priority | microburst | redlights | cascade | loadimbalance | topk")
		m       = flag.Int("m", 8, "burst flows (priority/microburst)")
		n       = flag.Int("n", 16, "servers (loadimbalance/topk)")
		timeout = flag.Duration("timeout", 0, "wall-clock deadline for the analyzer query (0 = none)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch *problem {
	case "priority", "microburst":
		s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{
			M: *m, Microburst: *problem == "microburst"})
		check(err)
		alert := awaitAlert(s.Testbed, s.Victim, 110*simtime.Millisecond)
		fmt.Printf("trigger: %s on %v at %v (%.2f → %.2f Gbps)\n",
			alert.Kind, alert.Flow, alert.DetectedAt, alert.PrevGbps, alert.CurGbps)
		printReport(run(ctx, s.Testbed.Analyzer, analyzer.ContentionQuery{Alert: alert}))
	case "redlights":
		s, err := scenario.NewRedLights(scenario.Options{})
		check(err)
		alert := awaitAlert(s.Testbed, s.Victim, 30*simtime.Millisecond)
		fmt.Printf("trigger: %s on %v at %v\n", alert.Kind, alert.Flow, alert.DetectedAt)
		printReport(run(ctx, s.Testbed.Analyzer, analyzer.RedLightsQuery{Alert: alert}))
	case "cascade":
		s, err := scenario.NewCascades(true, scenario.Options{})
		check(err)
		alert := awaitAlert(s.Testbed, s.FlowCE, 60*simtime.Millisecond)
		fmt.Printf("trigger: %s on %v at %v\n", alert.Kind, alert.Flow, alert.DetectedAt)
		rep := run(ctx, s.Testbed.Analyzer, analyzer.CascadeQuery{Alert: alert})
		printReport(rep)
		if len(rep.Cascade) > 1 {
			fmt.Println("cascade chain:")
			for i, f := range rep.Cascade {
				fmt.Printf("  %d. %v\n", i, f)
			}
		}
	case "loadimbalance":
		s, err := scenario.NewLoadImbalance(*n, scenario.Options{})
		check(err)
		tb := s.Testbed
		end := tb.Run(s.MaxFlowDuration() + 100*simtime.Millisecond)
		defer tb.Close()
		ag := tb.SwitchAgents[s.Suspect.NodeID()]
		nowEpoch := ag.LocalEpochAt(end)
		rep := run(ctx, tb.Analyzer, analyzer.ImbalanceQuery{
			Switch: s.Suspect.NodeID(),
			Window: simtime.EpochRange{Lo: nowEpoch - 99, Hi: nowEpoch},
			At:     end,
		})
		fmt.Printf("suspect switch: %s\n", s.Suspect.NodeName())
		for _, l := range rep.Links {
			fmt.Printf("  link %d: %d flows, sizes %d..%d B\n", l.Link, l.Flows, l.Min(), l.Max())
		}
		fmt.Printf("conclusion: %s\n", rep.Conclusion)
		fmt.Printf("hosts contacted: %d, diagnosis time: %v\n", rep.HostsContacted, rep.Total())
	case "topk":
		s, err := scenario.NewTopKWorkload(*n, 96, scenario.Options{})
		check(err)
		tb := s.Testbed
		end := tb.Run(50 * simtime.Millisecond)
		defer tb.Close()
		window := simtime.EpochRange{Lo: 0, Hi: 10}
		sp := run(ctx, tb.Analyzer, analyzer.TopKQuery{
			Switch: s.Queried.NodeID(), K: 100, Window: window, Mode: analyzer.ModeSwitchPointer, At: end})
		pd := run(ctx, tb.Analyzer, analyzer.TopKQuery{
			Switch: s.Queried.NodeID(), K: 100, Window: window, Mode: analyzer.ModePathDump, At: end})
		fmt.Printf("top-100 at %s: %d flows found\n", s.Queried.NodeName(), len(sp.Flows))
		for i, fb := range sp.Flows {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(sp.Flows)-5)
				break
			}
			fmt.Printf("  %2d. %v — %d B\n", i+1, fb.Flow, fb.Bytes)
		}
		fmt.Printf("SwitchPointer: %d hosts, %v\n", sp.HostsContacted, sp.Total())
		fmt.Printf("PathDump:      %d hosts, %v\n", pd.HostsContacted, pd.Total())
	default:
		fmt.Fprintf(os.Stderr, "spctl: unknown problem %q\n", *problem)
		os.Exit(2)
	}
}

// awaitAlert subscribes to the flow's alert stream, runs the testbed to the
// given virtual time, and returns the first alert delivered.
func awaitAlert(tb *scenario.Testbed, flow netsim.FlowKey, until simtime.Time) hostagent.Alert {
	alerts := tb.Subscribe(hostagent.AlertFilter{Flow: flow})
	tb.Run(until)
	tb.Close() // closes the stream so a missing alert is detectable
	alert, ok := <-alerts
	if !ok {
		fail("no trigger fired — nothing to debug")
	}
	return alert
}

func run(ctx context.Context, a *analyzer.Analyzer, q analyzer.Query) *analyzer.Report {
	rep, err := a.Run(ctx, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spctl: query %s aborted: %v (partial report follows)\n", q.Name(), err)
	}
	return rep
}

func printReport(d *analyzer.Report) {
	fmt.Printf("diagnosis: %s\n", d.Kind)
	fmt.Printf("conclusion: %s\n", d.Conclusion)
	fmt.Printf("search radius: %d pointer hosts, %d pruned, %d contacted\n",
		d.PointerHosts, d.PrunedHosts, d.HostsContacted)
	for _, c := range d.Culprits {
		fmt.Printf("  culprit: %v prio=%d bytes=%d at switch %d (telemetry from %v)\n",
			c.Flow, c.Priority, c.Bytes, c.Switch, c.Host)
	}
	fmt.Println("timing breakdown:")
	for _, p := range d.Clock.Phases() {
		fmt.Printf("  %-18s %v\n", p.Name, p.Duration)
	}
	fmt.Printf("  %-18s %v\n", "TOTAL", d.Total())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spctl:", err)
		os.Exit(1)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "spctl:", msg)
	os.Exit(1)
}
