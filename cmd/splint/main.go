// Command splint runs the SwitchPointer lint suite — four custom
// analyzers that mechanically enforce the invariants the repo's
// correctness claims rest on (see README "Invariants & static analysis"):
//
//	detlint   no wall clock / unseeded math/rand in deterministic code
//	sortlint  no map-iteration order leaking into reports or the wire
//	locklint  no network-blocking calls while a mutex is held
//	ctxlint   exported I/O functions thread context.Context
//
// Usage:
//
//	splint [-only detlint,ctxlint] [-dir moduleDir] [packages...]
//
// Packages default to ./... . Exit status: 0 clean, 1 diagnostics
// reported, 2 load/usage error. Suppress a finding with a justified
// directive on (or directly above) the flagged line:
//
//	//splint:wallclock bench harness measures real elapsed time
//
// The reason is mandatory; stale or unknown directives are themselves
// diagnostics, so annotations track the code they excuse.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"switchpointer/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("splint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("dir", ".", "directory inside the module to resolve package patterns from")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s //splint:%-10s %s\n", a.Name, a.Directive, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "splint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "splint: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "splint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "splint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
