package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSeededModule lays down a throwaway module containing a
// deterministic-scoped package ("netsim" path segment) that reads the
// wall clock — the canonical seeded violation.
func writeSeededModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module seedtest\n\ngo 1.24\n",
		"netsim/clock.go": `package netsim

import "time"

func Tick() time.Time { return time.Now() }
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolationFailsTheGate is the verify-gate demonstration: a
// wall-clock read seeded into a deterministic package must make splint
// exit 1 (the status scripts/verify.sh propagates), naming the analyzer
// and the offending call.
func TestSeededViolationFailsTheGate(t *testing.T) {
	dir := writeSeededModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "detlint") || !strings.Contains(out, "time.Now") {
		t.Errorf("diagnostic should name detlint and time.Now; got:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr should carry the finding count; got:\n%s", stderr.String())
	}
}

// TestOnlyScopesTheRun checks -only: the same seeded module is clean under
// sortlint alone, and detlint's directives are not misread as unknown.
func TestOnlyScopesTheRun(t *testing.T) {
	dir := writeSeededModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "-only", "sortlint", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nosuch"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer; got:\n%s", stderr.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"detlint", "sortlint", "locklint", "ctxlint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
